"""The unified crash-safe artifact store.

One content-addressed store replaces the backing I/O of every on-disk
cache the harness grew — the sweep cell cache, the θ-invariant stage
bundles, and any saved images/profiles — behind a single API keyed by
the content fingerprints of :mod:`repro.pipeline.artifacts`.

Layout (under one root, ``REPRO_CACHE_DIR`` / ``.repro-cache``)::

    <root>/<aa>/<keydigest>.json          cell refs   (legacy layout kept)
    <root>/stages/<aa>/<keydigest>.json   stage-bundle refs
    <root>/images/<aa>/<keydigest>.json   squashed-image refs
    <root>/profiles/<aa>/<keydigest>.json profile refs
    <root>/objects/<cc>/<contenthash>.obj content objects (stored once)
    <root>/.store-lock                    quota/eviction critical section
    <root>/store-manifest.json            sealed manifest snapshot (gc)

Every **object** holds one sealed entry (the CRC-sealed two-line format
of :mod:`repro.resilience.cache`), written with the same O_EXCL temp +
fsync + atomic-link discipline; every **ref** is a hard link to its
object, so identical stage bundles, images, or profiles are stored once
no matter how many keys map to them (``store.dedup_saves`` counts the
link-only publishes).  A ref is byte-for-byte a sealed entry, so legacy
cache files written by older harness versions read back unchanged.

Robustness is the headline feature:

* **Crash safety** — a SIGKILL at any point leaves either the old
  state, a stale temp file, or an orphan object; never a torn entry
  under a live name.  Readers validate the seal and *quarantine*
  corrupt refs (unlink + tally by reason) so the slot heals on the
  next write.
* **Quota** — with ``REPRO_STORE_QUOTA_BYTES`` set, admission and
  eviction run under a crash-tolerant lock (:mod:`repro.store.locks`):
  usage is re-measured inside the critical section, victims are chosen
  by the configured policy (:mod:`repro.store.policies`), and each
  victim is re-checked against its **generation stamp** (inode +
  mtime + atime captured at scan time) immediately before the unlink —
  an entry rewritten or touched by a racing worker is skipped, never
  clobbered.  On-disk usage never exceeds the quota: the check happens
  before bytes are added, under the lock.
* **Graceful degradation** — transient write failures retry with
  backoff (``REPRO_STORE_RETRIES`` / ``REPRO_STORE_BACKOFF``); a run
  of failures opens a breaker (``REPRO_STORE_BREAKER_THRESHOLD`` /
  ``_COOLDOWN``) that short-circuits every call with a typed
  :class:`~repro.errors.StoreDegraded` instead of hammering a dead
  disk.  Callers catch it and recompute without caching; the sweep
  completes either way, and ``store.degraded`` counts how often.

Chaos hooks (:func:`repro.faultinject.chaos.maybe_store_fault`) fire
inside the write and eviction paths when ``REPRO_STORE_CHAOS`` is
armed, so ENOSPC storms and kills mid-eviction are testable
deterministically.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import pathlib
import secrets
import time
import warnings
from dataclasses import dataclass

from repro import settings as _settings
from repro.errors import StoreDegraded, TenantQuotaExceeded
from repro.obs.metrics import get_registry
from repro.resilience.cache import CacheStats, read_entry, seal_text
from repro.store import policies as _policies
from repro.store.locks import LockTimeout, StoreLock

__all__ = [
    "NAMESPACES",
    "ArtifactStore",
    "ManifestEntry",
    "StoreConfig",
]

_METRICS = get_registry()

#: namespace -> subdirectory under the store root ("" = the root
#: itself, which is where the pre-store cell cache already lived).
NAMESPACES = {
    "cell": "",
    "stage": "stages",
    "image": "images",
    "profile": "profiles",
    "job": "jobs",
    "sweep": "sweeps",
}

#: Directory names under the root that are never ref namespaces.
_RESERVED = {"objects", "tenants", "spool", "claims"} | {
    sub for sub in NAMESPACES.values() if sub
}

#: Where tenant-attribution markers live (one empty file per
#: tenant-attributed ref, named ``<ns>@<key>``).
_TENANTS_DIR = "tenants"

_MANIFEST_NAME = "store-manifest.json"
_LOCK_NAME = ".store-lock"


def _chaos_fault(point: str) -> None:
    """Fire an armed store chaos fault at *point* (no-op otherwise)."""
    from repro.faultinject.chaos import maybe_store_fault

    maybe_store_fault(point)


@dataclass(frozen=True)
class StoreConfig:
    """The store knobs, resolved from :mod:`repro.settings`."""

    quota_bytes: int | None
    policy: str
    retries: int
    backoff: float
    breaker_threshold: int
    breaker_cooldown: float
    tenant_quota_bytes: int | None = None

    @classmethod
    def from_settings(cls) -> "StoreConfig":
        resolved = _settings.current()
        invalid = [
            name for name in resolved.invalid
            if name.startswith(("REPRO_STORE_", "REPRO_TENANT_"))
        ]
        if invalid:
            warnings.warn(
                f"{', '.join(sorted(invalid))}: invalid value(s); "
                "falling back to store defaults",
                RuntimeWarning,
                stacklevel=3,
            )
        return cls(
            quota_bytes=resolved.store_quota_bytes,
            policy=resolved.store_policy,
            retries=resolved.store_retries,
            backoff=resolved.store_backoff,
            breaker_threshold=resolved.store_breaker_threshold,
            breaker_cooldown=resolved.store_breaker_cooldown,
            tenant_quota_bytes=resolved.tenant_quota_bytes,
        )


@dataclass
class ManifestEntry:
    """One live ref, generation-stamped by (ino, mtime, atime).

    The stamp is what makes eviction safe against racing writers and
    readers: any change to the entry between the manifest scan and the
    unlink shows up as a stamp mismatch and the victim is skipped.
    """

    ns: str
    key: str
    path: pathlib.Path
    size: int
    ino: int
    atime_ns: int
    mtime_ns: int


class ArtifactStore:
    """Content-addressed, quota-aware, degradation-tolerant store.

    One instance per root per process; get one through
    :func:`repro.store.get_store` so breaker state is shared by every
    caller hitting the same root.
    """

    def __init__(self, root: pathlib.Path):
        self.root = pathlib.Path(root)
        self._breaker_failures = 0
        self._breaker_open_until = 0.0
        self._policy_warned = False

    # -- paths ---------------------------------------------------------------

    def ref_path(self, ns: str, key: str) -> pathlib.Path:
        """Where the (ns, key) ref lives (the pre-store cache layout)."""
        sub = NAMESPACES[ns]
        base = self.root / sub if sub else self.root
        return base / key[:2] / f"{key}.json"

    def object_path(self, content_hash: str) -> pathlib.Path:
        return (
            self.root / "objects" / content_hash[:2]
            / f"{content_hash}.obj"
        )

    @property
    def manifest_path(self) -> pathlib.Path:
        return self.root / _MANIFEST_NAME

    def _lock(self) -> StoreLock:
        # The lock file lives directly under the root, which may not
        # exist yet on the very first quota-guarded write.
        self.root.mkdir(parents=True, exist_ok=True)
        return StoreLock(self.root / _LOCK_NAME)

    # -- breaker / degradation -----------------------------------------------

    def _degrade(self, reason: str, message: str) -> StoreDegraded:
        _METRICS.inc("store.degraded")
        _METRICS.inc(f"store.degraded.{reason}")
        return StoreDegraded(message, reason=reason)

    def _check_breaker(self, cfg: StoreConfig) -> None:
        if cfg.breaker_threshold <= 0:
            return
        if time.monotonic() < self._breaker_open_until:
            raise self._degrade(
                "breaker-open",
                f"store breaker open for {self.root} "
                f"(after {self._breaker_failures} consecutive failures)",
            )

    def _breaker_failure(self, cfg: StoreConfig) -> None:
        self._breaker_failures += 1
        if (
            cfg.breaker_threshold > 0
            and self._breaker_failures >= cfg.breaker_threshold
        ):
            self._breaker_open_until = (
                time.monotonic() + cfg.breaker_cooldown
            )
            _METRICS.inc("store.breaker_opens")

    def _breaker_success(self) -> None:
        self._breaker_failures = 0
        self._breaker_open_until = 0.0

    # -- read path -----------------------------------------------------------

    def get(
        self,
        ns: str,
        key: str,
        required_keys=(),
        stats: CacheStats | None = None,
    ) -> dict | None:
        """The stored entry, or ``None`` (miss / quarantined corrupt).

        Raises :class:`StoreDegraded` only when the breaker is open —
        a plain miss or a detected-corrupt entry is an expected state
        the caller recomputes from.
        """
        cfg = StoreConfig.from_settings()
        self._check_breaker(cfg)
        stats = stats if stats is not None else CacheStats()
        before_rejects = dict(stats.rejects)
        path = self.ref_path(ns, key)
        entry = read_entry(path, required_keys, stats)
        if entry is None:
            _METRICS.inc("store.misses")
            _METRICS.inc(f"store.ns.{ns}.misses")
            new_rejects = {
                reason: count - before_rejects.get(reason, 0)
                for reason, count in stats.rejects.items()
                if count != before_rejects.get(reason, 0)
            }
            if new_rejects:
                reason = next(iter(new_rejects))
                _METRICS.inc(f"store.rejects.{reason}")
                if reason == "unreadable":
                    # EIO and friends: a disk that fails reads will
                    # fail writes too — feed the breaker.
                    self._breaker_failure(cfg)
                else:
                    self._quarantine(path, reason)
            return None
        self._breaker_success()
        _METRICS.inc("store.hits")
        _METRICS.inc(f"store.ns.{ns}.hits")
        self._touch(path)
        return entry

    def _quarantine(self, path: pathlib.Path, reason: str) -> None:
        """Remove a corrupt ref so the slot heals on the next write."""
        try:
            os.unlink(path)
        except OSError:
            return
        _METRICS.inc("store.quarantined")
        _METRICS.inc(f"store.quarantined.{reason}")

    @staticmethod
    def _touch(path: pathlib.Path) -> None:
        """Bump the ref's atime (recency for LRU) without moving its
        mtime — resumed sweeps pin 'survivors are never rewritten' on
        the mtime staying put."""
        try:
            stat = os.stat(path)
            os.utime(path, ns=(time.time_ns(), stat.st_mtime_ns))
        except OSError:
            pass

    # -- write path ----------------------------------------------------------

    def put(
        self, ns: str, key: str, obj: dict, tenant: str | None = None
    ) -> bool:
        """Persist *obj* under (ns, key); True when it is stored.

        ``False`` means the entry was *refused admission* (larger than
        the quota, or the evictor could not free enough) — a policy
        outcome, not a failure.  Infrastructure failures retry with
        backoff and then raise :class:`StoreDegraded`.

        With *tenant* the ref is attributed to that tenant: it counts
        toward the tenant's usage (:meth:`tenant_usage`), the
        per-tenant quota (``REPRO_TENANT_QUOTA_BYTES``) is enforced
        with eviction scoped to the tenant's *own* refs — raising a
        typed :class:`~repro.errors.TenantQuotaExceeded` when they
        cannot make room — and global-quota eviction for this write
        never victimizes refs attributed to *other* tenants.
        """
        cfg = StoreConfig.from_settings()
        self._check_breaker(cfg)
        payload = seal_text(json.dumps(obj, sort_keys=True)).encode("utf-8")
        size = len(payload)
        if cfg.quota_bytes is not None and size > cfg.quota_bytes:
            _METRICS.inc("store.admission_rejected")
            return False
        attempt = 0
        while True:
            try:
                admitted = self._put_once(
                    ns, key, payload, size, cfg, tenant
                )
            except (OSError, LockTimeout) as exc:
                attempt += 1
                _METRICS.inc("store.write_retries")
                if attempt > cfg.retries:
                    self._breaker_failure(cfg)
                    reason = (
                        errno.errorcode.get(exc.errno, "oserror")
                        if getattr(exc, "errno", None)
                        else type(exc).__name__.lower()
                    )
                    raise self._degrade(
                        reason.lower(),
                        f"store write failed after {attempt} attempt(s): "
                        f"{exc}",
                    ) from exc
                time.sleep(cfg.backoff * attempt)
                continue
            self._breaker_success()
            if admitted:
                _METRICS.inc("store.writes")
                _METRICS.inc(f"store.ns.{ns}.writes")
            return admitted

    def _put_once(
        self,
        ns: str,
        key: str,
        payload: bytes,
        size: int,
        cfg: StoreConfig,
        tenant: str | None = None,
    ) -> bool:
        content = hashlib.sha256(payload).hexdigest()
        obj_path = self.object_path(content)
        ref = self.ref_path(ns, key)
        tenant_quota = (
            cfg.tenant_quota_bytes if tenant is not None else None
        )
        if cfg.quota_bytes is None and tenant_quota is None:
            self._publish(obj_path, ref, payload)
            if tenant is not None:
                self._mark_tenant(tenant, ns, key)
            return True
        # Admission + eviction + publish is one cross-process critical
        # section: without it two workers could each see room and
        # overshoot the quota together.
        with self._lock():
            entries = self.scan()
            if tenant_quota is not None:
                if self._admit_tenant_locked(
                    entries, ns, key, size, tenant, tenant_quota, cfg
                ):
                    entries = self.scan()
            if cfg.quota_bytes is not None:
                usage = self.usage_bytes(entries)
                new_bytes = 0 if obj_path.exists() else size
                if usage + new_bytes > cfg.quota_bytes:
                    protect = None
                    if tenant is not None:
                        protect = {
                            owned
                            for owned, owner in self._tenant_map().items()
                            if owner != tenant
                        }
                    freed = self._evict_locked(
                        entries, usage + new_bytes - cfg.quota_bytes,
                        cfg, protect=protect,
                    )
                    usage -= freed
                    if usage + new_bytes > cfg.quota_bytes:
                        _METRICS.inc("store.admission_rejected")
                        return False
                self._publish(obj_path, ref, payload)
                _METRICS.set_gauge(
                    "store.usage_bytes", usage + new_bytes
                )
            else:
                self._publish(obj_path, ref, payload)
            if tenant is not None:
                self._mark_tenant(tenant, ns, key)
        return True

    def _publish(
        self,
        obj_path: pathlib.Path,
        ref: pathlib.Path,
        payload: bytes,
    ) -> None:
        """Object first (stored once), then the ref hard link.

        Either step losing an O_EXCL/EEXIST race reuses the winner's
        file; a crash between the two leaves an orphan object that gc
        collects.  All failure modes surface as OSError for the retry
        loop above.
        """
        deduped = True
        if not obj_path.exists():
            obj_path.parent.mkdir(parents=True, exist_ok=True)
            tmp = obj_path.parent / (
                f".tmp-{os.getpid()}-{secrets.token_hex(4)}"
            )
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            try:
                try:
                    _chaos_fault("write")
                    os.write(fd, payload)
                    os.fsync(fd)
                finally:
                    os.close(fd)
                try:
                    os.link(tmp, obj_path)
                    deduped = False
                except FileExistsError:
                    pass  # another writer published the same content
            finally:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            _fsync_dir(obj_path.parent)
        ref.parent.mkdir(parents=True, exist_ok=True)
        try:
            os.link(obj_path, ref)
        except FileExistsError:
            # The key exists: atomically repoint it unless it already
            # names this exact content.
            try:
                if os.stat(ref).st_ino == os.stat(obj_path).st_ino:
                    return
            except OSError:
                pass
            rtmp = ref.parent / (
                f".ref-{os.getpid()}-{secrets.token_hex(4)}.tmp"
            )
            os.link(obj_path, rtmp)
            os.replace(rtmp, ref)
        except OSError:
            # Filesystem without hard links: degrade to an independent
            # sealed copy (no dedup, same crash safety).
            _METRICS.inc("store.link_fallbacks")
            rtmp = ref.parent / (
                f".ref-{os.getpid()}-{secrets.token_hex(4)}.tmp"
            )
            fd = os.open(rtmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            try:
                os.write(fd, payload)
                os.fsync(fd)
            finally:
                os.close(fd)
            os.replace(rtmp, ref)
            deduped = False
        if deduped:
            _METRICS.inc("store.dedup_saves")
        _fsync_dir(ref.parent)

    # -- tenant attribution --------------------------------------------------

    @staticmethod
    def _safe_tenant(tenant: str) -> str:
        """A filesystem-safe directory name for *tenant* (hashed when
        the raw name carries separators or oddities)."""
        import re

        if re.fullmatch(r"[A-Za-z0-9._-]{1,64}", tenant):
            return tenant
        digest = hashlib.sha256(tenant.encode("utf-8")).hexdigest()
        return f"t-{digest[:16]}"

    def _tenant_dir(self, tenant: str) -> pathlib.Path:
        return self.root / _TENANTS_DIR / self._safe_tenant(tenant)

    def _mark_tenant(self, tenant: str, ns: str, key: str) -> None:
        """Attribute the (ns, key) ref to *tenant* with an empty
        marker file (idempotent; markers carry no bytes of their own)."""
        marker = self._tenant_dir(tenant) / f"{ns}@{key}"
        try:
            marker.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(marker, os.O_WRONLY | os.O_CREAT, 0o644)
            os.close(fd)
        except OSError:
            pass  # attribution is accounting, never a write failure

    def tenants(self) -> list[str]:
        """Tenant directory names with at least one marker."""
        base = self.root / _TENANTS_DIR
        try:
            return sorted(
                child.name for child in base.iterdir()
                if child.is_dir()
            )
        except OSError:
            return []

    def _tenant_map(self) -> dict[tuple[str, str], str]:
        """(ns, key) -> tenant directory name, from the marker tree."""
        owners: dict[tuple[str, str], str] = {}
        for tenant in self.tenants():
            for marker in self._iter_markers(tenant):
                ns, _, key = marker.name.partition("@")
                if key:
                    owners[(ns, key)] = tenant
        return owners

    def _iter_markers(self, tenant: str) -> list[pathlib.Path]:
        try:
            return [
                path for path in self._tenant_dir(tenant).iterdir()
                if "@" in path.name
            ]
        except OSError:
            return []

    def tenant_refs(
        self, tenant: str, entries: list[ManifestEntry] | None = None
    ) -> list[ManifestEntry]:
        """The live manifest entries attributed to *tenant*; markers
        whose ref is gone (evicted, quarantined) are pruned as seen."""
        if entries is None:
            entries = self.scan()
        by_key = {(entry.ns, entry.key): entry for entry in entries}
        refs: list[ManifestEntry] = []
        for marker in self._iter_markers(self._safe_tenant(tenant)):
            ns, _, key = marker.name.partition("@")
            entry = by_key.get((ns, key))
            if entry is None:
                try:
                    marker.unlink()
                except OSError:
                    pass
                continue
            refs.append(entry)
        return refs

    def tenant_usage(
        self, tenant: str, entries: list[ManifestEntry] | None = None
    ) -> int:
        """Live bytes attributed to *tenant* (each inode once)."""
        seen: set[int] = set()
        total = 0
        for entry in self.tenant_refs(tenant, entries):
            if entry.ino not in seen:
                seen.add(entry.ino)
                total += entry.size
        _METRICS.set_gauge(
            f"store.tenant.{self._safe_tenant(tenant)}.usage_bytes",
            total,
        )
        return total

    def _admit_tenant_locked(
        self,
        entries: list[ManifestEntry],
        ns: str,
        key: str,
        size: int,
        tenant: str,
        quota: int,
        cfg: StoreConfig,
    ) -> int:
        """Make room for a *size*-byte write inside *tenant*'s budget.

        Caller holds the store lock.  Victims come exclusively from
        the tenant's own refs, in policy order with the generation
        stamp re-checked — one tenant's pressure never touches another
        tenant's working set.  Returns the number of refs evicted;
        raises :class:`~repro.errors.TenantQuotaExceeded` when even
        that cannot fit the write.
        """
        refs = self.tenant_refs(tenant, entries)
        live = [
            entry for entry in refs
            if not (entry.ns == ns and entry.key == key)
        ]

        def _usage(pool: list[ManifestEntry]) -> int:
            seen: set[int] = set()
            total = 0
            for entry in pool:
                if entry.ino not in seen:
                    seen.add(entry.ino)
                    total += entry.size
            return total

        if _usage(live) + size <= quota:
            return 0
        order, _ = _policies.eviction_order(cfg.policy, live)
        evicted = 0
        remaining = list(live)
        for victim in order:
            if _usage(remaining) + size <= quota:
                break
            try:
                stat = os.stat(victim.path)
            except OSError:
                remaining = [e for e in remaining if e is not victim]
                continue
            if (
                stat.st_ino != victim.ino
                or stat.st_mtime_ns != victim.mtime_ns
                or stat.st_atime_ns != victim.atime_ns
            ):
                _METRICS.inc("store.eviction_skipped_generation")
                continue
            try:
                os.unlink(victim.path)
            except OSError:
                continue
            remaining = [e for e in remaining if e is not victim]
            evicted += 1
            _METRICS.inc("store.tenant_evictions")
            marker = (
                self._tenant_dir(tenant) / f"{victim.ns}@{victim.key}"
            )
            try:
                marker.unlink()
            except OSError:
                pass
        usage = _usage(remaining)
        if usage + size > quota:
            _METRICS.inc("store.tenant_quota_rejected")
            raise TenantQuotaExceeded(
                f"tenant {tenant} write refused by the store",
                tenant=tenant,
                usage_bytes=usage,
                quota_bytes=quota,
            )
        return evicted

    # -- manifest / accounting -----------------------------------------------

    def scan(self) -> list[ManifestEntry]:
        """Every live ref, generation-stamped (the manifest source of
        truth; the persisted snapshot is only an inspection cache)."""
        entries: list[ManifestEntry] = []
        for ns, sub in NAMESPACES.items():
            base = self.root / sub if sub else self.root
            try:
                shards = list(base.iterdir())
            except OSError:
                continue
            for shard in shards:
                if (
                    len(shard.name) != 2
                    or shard.name in _RESERVED
                    or not shard.is_dir()
                ):
                    continue
                try:
                    files = list(shard.iterdir())
                except OSError:
                    continue
                for path in files:
                    if path.name.startswith(".") or not path.name.endswith(
                        ".json"
                    ):
                        continue
                    try:
                        stat = os.stat(path)
                    except OSError:
                        continue
                    entries.append(
                        ManifestEntry(
                            ns=ns,
                            key=path.name[: -len(".json")],
                            path=path,
                            size=stat.st_size,
                            ino=stat.st_ino,
                            atime_ns=stat.st_atime_ns,
                            mtime_ns=stat.st_mtime_ns,
                        )
                    )
        return entries

    def _scan_objects(self) -> dict[int, tuple[pathlib.Path, int, int]]:
        """inode -> (path, size, nlink) for every stored object."""
        objects: dict[int, tuple[pathlib.Path, int, int]] = {}
        base = self.root / "objects"
        if not base.is_dir():
            return objects
        for shard in base.iterdir():
            if not shard.is_dir():
                continue
            for path in shard.iterdir():
                if path.name.startswith("."):
                    continue
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                objects[stat.st_ino] = (path, stat.st_size, stat.st_nlink)
        return objects

    def usage_bytes(self, entries: list[ManifestEntry] | None = None) -> int:
        """Published bytes under the root, each inode counted once."""
        if entries is None:
            entries = self.scan()
        seen: set[int] = set()
        total = 0
        for entry in entries:
            if entry.ino not in seen:
                seen.add(entry.ino)
                total += entry.size
        for ino, (_, size, _) in self._scan_objects().items():
            if ino not in seen:
                seen.add(ino)
                total += size
        try:
            total += os.stat(self.manifest_path).st_size
        except OSError:
            pass
        return total

    # -- eviction ------------------------------------------------------------

    def _evict_locked(
        self,
        entries: list[ManifestEntry],
        need_bytes: int,
        cfg: StoreConfig,
        protect: set[tuple[str, str]] | None = None,
    ) -> int:
        """Free at least *need_bytes* if possible; returns bytes freed.

        Caller holds the store lock.  Orphan objects (no live ref — a
        crashed writer's leftovers) go first; then refs in policy
        order, each re-checked against its generation stamp so a
        racing rewrite or fresh hit is never clobbered.  Refs whose
        (ns, key) is in *protect* — other tenants' working sets, when
        the write being admitted is tenant-attributed — are never
        victims.
        """
        freed = 0
        objects = self._scan_objects()
        ref_inos: dict[int, int] = {}
        for entry in entries:
            ref_inos[entry.ino] = ref_inos.get(entry.ino, 0) + 1
        for ino, (path, size, _) in list(objects.items()):
            if ino not in ref_inos:
                try:
                    os.unlink(path)
                except OSError:
                    continue
                _METRICS.inc("store.orphans_collected")
                freed += size
                del objects[ino]
        order, known = _policies.eviction_order(cfg.policy, entries)
        if not known and not self._policy_warned:
            self._policy_warned = True
            _METRICS.inc("store.policy_fallback")
            warnings.warn(
                f"unknown store eviction policy {cfg.policy!r}; "
                f"falling back to {_policies.DEFAULT_POLICY}",
                RuntimeWarning,
                stacklevel=4,
            )
        evicted_refs = 0
        for victim in order:
            if freed >= need_bytes:
                break
            if protect and (victim.ns, victim.key) in protect:
                _METRICS.inc("store.eviction_skipped_tenant")
                continue
            try:
                stat = os.stat(victim.path)
            except OSError:
                continue  # already gone
            if (
                stat.st_ino != victim.ino
                or stat.st_mtime_ns != victim.mtime_ns
                or stat.st_atime_ns != victim.atime_ns
            ):
                # Rewritten or freshly read since the scan: the
                # generation stamp says this victim is live — skip it.
                _METRICS.inc("store.eviction_skipped_generation")
                continue
            try:
                os.unlink(victim.path)
            except OSError:
                continue
            evicted_refs += 1
            _METRICS.inc("store.evictions")
            _METRICS.inc(f"store.ns.{victim.ns}.evictions")
            _chaos_fault("evict")
            remaining = ref_inos.get(victim.ino, 1) - 1
            ref_inos[victim.ino] = remaining
            if victim.ino in objects:
                if remaining <= 0:
                    path, size, _ = objects.pop(victim.ino)
                    try:
                        os.unlink(path)
                        freed += size
                    except OSError:
                        pass
            else:
                # Legacy standalone ref (pre-store entry): its bytes
                # are its own.
                freed += victim.size
        if freed:
            _METRICS.inc("store.evicted_bytes", freed)
        return freed

    def evict(self, target_bytes: int | None = None) -> dict:
        """Explicit eviction down to *target_bytes* (or the quota)."""
        cfg = StoreConfig.from_settings()
        target = (
            target_bytes if target_bytes is not None else cfg.quota_bytes
        )
        if target is None:
            return {"freed": 0, "usage": self.usage_bytes()}
        with self._lock():
            entries = self.scan()
            usage = self.usage_bytes(entries)
            freed = 0
            if usage > target:
                freed = self._evict_locked(entries, usage - target, cfg)
        return {"freed": freed, "usage": self.usage_bytes()}

    # -- maintenance ---------------------------------------------------------

    def gc(
        self,
        stale_temp_seconds: float = 300.0,
        rejected_age_seconds: float = 3600.0,
    ) -> dict:
        """Collect crash leftovers and rewrite the manifest snapshot.

        Removes stale temp files, orphan objects, corrupt refs
        (quarantined by reason), aged-out ``.rejected`` spool
        quarantine files, and tenant markers whose ref is gone, then
        persists a sealed manifest snapshot for `repro store stats`
        and enforces the quota.
        """
        report = {
            "stale_temps": 0,
            "orphan_objects": 0,
            "corrupt_refs": 0,
            "rejected_spool": 0,
            "stale_markers": 0,
            "evicted": 0,
        }
        now = time.time()
        for pattern in (".tmp-*", "*/.tmp-*", "*/*/.tmp-*",
                        ".ref-*.tmp", "*/.ref-*.tmp", "*/*/.ref-*.tmp",
                        "*/*/.*.tmp"):
            for tmp in self.root.glob(pattern):
                try:
                    if now - tmp.stat().st_mtime > stale_temp_seconds:
                        tmp.unlink()
                        report["stale_temps"] += 1
                except OSError:
                    continue
        # Quarantined spool requests (torn/foreign files renamed to
        # ``.rejected`` by the serve loop) age out here — without this
        # they accumulate forever.
        for rejected in self.root.glob("spool/*.rejected"):
            try:
                if now - rejected.stat().st_mtime > rejected_age_seconds:
                    rejected.unlink()
                    report["rejected_spool"] += 1
                    _METRICS.inc("store.rejected_spool_collected")
            except OSError:
                continue
        stats = CacheStats()
        entries = self.scan()
        for entry in entries:
            before = stats.rejected
            if (
                read_entry(entry.path, (), stats) is None
                and stats.rejected > before
            ):
                self._quarantine(entry.path, "gc")
                report["corrupt_refs"] += 1
        entries = self.scan()
        live = {entry.ino for entry in entries}
        for ino, (path, _, _) in self._scan_objects().items():
            if ino not in live:
                try:
                    os.unlink(path)
                    report["orphan_objects"] += 1
                    _METRICS.inc("store.orphans_collected")
                except OSError:
                    continue
        live_keys = {(entry.ns, entry.key) for entry in entries}
        for tenant in self.tenants():
            for marker in self._iter_markers(tenant):
                ns, _, key = marker.name.partition("@")
                if (ns, key) in live_keys:
                    continue
                try:
                    marker.unlink()
                    report["stale_markers"] += 1
                except OSError:
                    continue
        self._write_manifest(entries)
        cfg = StoreConfig.from_settings()
        if cfg.quota_bytes is not None:
            report["evicted"] = self.evict(cfg.quota_bytes)["freed"]
        return report

    def _write_manifest(self, entries: list[ManifestEntry]) -> None:
        """Best-effort sealed snapshot (inspection only; corruption is
        detected by the seal and the snapshot rebuilt on next gc)."""
        snapshot = {
            "version": 1,
            "entries": {
                f"{entry.ns}/{entry.key}": {
                    "size": entry.size,
                    "atime_ns": entry.atime_ns,
                    "mtime_ns": entry.mtime_ns,
                }
                for entry in sorted(
                    entries, key=lambda e: (e.ns, e.key)
                )
            },
        }
        try:
            from repro.resilience.cache import write_entry

            write_entry(self.manifest_path, snapshot)
        except OSError:
            pass

    def load_manifest(self) -> dict | None:
        """The persisted snapshot, or ``None`` (absent or corrupt —
        corruption is counted and heals at the next gc)."""
        stats = CacheStats()
        snapshot = read_entry(
            self.manifest_path, ("version", "entries"), stats
        )
        if snapshot is None and stats.rejected:
            _METRICS.inc("store.manifest_rebuilds")
        return snapshot

    def verify(self) -> dict:
        """Read-only health check of every ref, object, and the
        manifest; corrupt entries are reported, not removed."""
        report = {
            "refs": 0,
            "ok": 0,
            "corrupt": {},
            "objects": 0,
            "orphan_objects": 0,
            "dedup_refs": 0,
            "manifest": "absent",
            "usage_bytes": 0,
            "quota_bytes": StoreConfig.from_settings().quota_bytes,
        }
        entries = self.scan()
        report["refs"] = len(entries)
        report["usage_bytes"] = self.usage_bytes(entries)
        for entry in entries:
            stats = CacheStats()
            if read_entry(entry.path, (), stats) is not None:
                report["ok"] += 1
            else:
                reason = (
                    next(iter(stats.rejects)) if stats.rejects else "torn"
                )
                report["corrupt"][reason] = (
                    report["corrupt"].get(reason, 0) + 1
                )
        live: dict[int, int] = {}
        for entry in entries:
            live[entry.ino] = live.get(entry.ino, 0) + 1
        report["dedup_refs"] = sum(
            count - 1 for count in live.values() if count > 1
        )
        objects = self._scan_objects()
        report["objects"] = len(objects)
        report["orphan_objects"] = sum(
            1 for ino in objects if ino not in live
        )
        if self.manifest_path.exists():
            report["manifest"] = (
                "ok" if self.load_manifest() is not None else "corrupt"
            )
        return report

    def stats(self) -> dict:
        """Point-in-time store statistics (cheap scan, no mutation)."""
        cfg = StoreConfig.from_settings()
        entries = self.scan()
        per_ns: dict[str, int] = {}
        for entry in entries:
            per_ns[entry.ns] = per_ns.get(entry.ns, 0) + 1
        usage = self.usage_bytes(entries)
        _METRICS.set_gauge("store.usage_bytes", usage)
        return {
            "root": str(self.root),
            "refs": len(entries),
            "per_namespace": dict(sorted(per_ns.items())),
            "objects": len(self._scan_objects()),
            "usage_bytes": usage,
            "quota_bytes": cfg.quota_bytes,
            "policy": cfg.policy,
            "breaker_open": time.monotonic() < self._breaker_open_until,
            "tenants": {
                tenant: self.tenant_usage(tenant, entries)
                for tenant in self.tenants()
            },
            "tenant_quota_bytes": cfg.tenant_quota_bytes,
        }


def _fsync_dir(directory: pathlib.Path) -> None:
    """Best-effort durability for link/rename publications."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
