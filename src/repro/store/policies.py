"""Eviction-policy registry for the unified artifact store.

A policy is a pure function ``(entries) -> ordered victims``: given the
manifest scan of every live ref, it returns the refs in the order the
evictor should reclaim them.  The evictor walks that order until enough
bytes are freed, so a policy expresses *preference*, not quota
arithmetic.

Two policies ship:

``lru`` (the default)
    Least-recently-accessed first.  The store bumps each ref's atime on
    every hit (mtime is left untouched — resumability tests pin it), so
    recency survives process boundaries through the filesystem.

``coaccess``
    Ozturk-style access-pattern grouping: refs whose last accesses fall
    in the same time window are treated as one working set and evicted
    together, oldest window first.  A sweep that always decodes a stage
    bundle alongside its sibling cells keeps or loses that whole
    cluster at once, instead of LRU shaving single members off a set
    that will be re-fetched together anyway.

Register custom policies with :func:`register_policy`; select one with
``REPRO_STORE_POLICY``.  An unknown name degrades to ``lru`` with a
warning (and a ``store.policy_fallback`` counter) rather than failing
the sweep — eviction preference is never worth an outage.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, List

if TYPE_CHECKING:
    from repro.store.store import ManifestEntry

__all__ = [
    "DEFAULT_POLICY",
    "available_policies",
    "eviction_order",
    "get_policy",
    "register_policy",
]

DEFAULT_POLICY = "lru"

#: Width of one co-access window, in nanoseconds of ref atime.  Refs
#: last touched within the same window count as one working set.
COACCESS_WINDOW_NS = 2_000_000_000

Policy = Callable[[Iterable["ManifestEntry"]], List["ManifestEntry"]]

_POLICIES: dict[str, Policy] = {}


def register_policy(name: str, fn: Policy | None = None):
    """Register *fn* under *name* (usable as a decorator)."""
    def _install(fn: Policy) -> Policy:
        _POLICIES[name] = fn
        return fn

    if fn is not None:
        return _install(fn)
    return _install


def get_policy(name: str) -> Policy | None:
    return _POLICIES.get(name)


def available_policies() -> tuple[str, ...]:
    return tuple(sorted(_POLICIES))


@register_policy("lru")
def _lru(entries: Iterable["ManifestEntry"]) -> List["ManifestEntry"]:
    """Oldest access first; path breaks ties deterministically."""
    return sorted(entries, key=lambda e: (e.atime_ns, str(e.path)))


@register_policy("coaccess")
def _coaccess(entries: Iterable["ManifestEntry"]) -> List["ManifestEntry"]:
    """Whole co-access windows, oldest window first.

    Within a window, refs sharing an inode (dedup'd content) stay
    adjacent so the group's bytes are actually reclaimed together.
    """
    return sorted(
        entries,
        key=lambda e: (
            e.atime_ns // COACCESS_WINDOW_NS,
            e.ino,
            e.atime_ns,
            str(e.path),
        ),
    )


def eviction_order(
    name: str, entries: Iterable["ManifestEntry"]
) -> tuple[List["ManifestEntry"], bool]:
    """Victims in policy order, plus whether *name* resolved.

    Unknown names fall back to :data:`DEFAULT_POLICY` (the ``False``
    in the return tells the caller to warn/count the fallback).
    """
    policy = _POLICIES.get(name)
    if policy is None:
        return _POLICIES[DEFAULT_POLICY](entries), False
    return policy(entries), True
