"""Unified crash-safe artifact store (see :mod:`repro.store.store`).

:func:`get_store` is the entry point: it hands back one
:class:`~repro.store.store.ArtifactStore` per root per process, so
breaker state and warn-once flags are shared by every caller hitting
the same directory (the sweep cell cache, the stage bundles, images,
profiles).
"""

from __future__ import annotations

import pathlib

from repro.store.locks import LockTimeout, StoreLock
from repro.store.policies import (
    DEFAULT_POLICY,
    available_policies,
    eviction_order,
    get_policy,
    register_policy,
)
from repro.store.store import (
    NAMESPACES,
    ArtifactStore,
    ManifestEntry,
    StoreConfig,
)

__all__ = [
    "DEFAULT_POLICY",
    "NAMESPACES",
    "ArtifactStore",
    "LockTimeout",
    "ManifestEntry",
    "StoreConfig",
    "StoreLock",
    "available_policies",
    "eviction_order",
    "get_policy",
    "get_store",
    "register_policy",
    "reset_stores",
]

_STORES: dict[str, ArtifactStore] = {}


def get_store(root: pathlib.Path | str) -> ArtifactStore:
    """The process-wide store instance for *root*."""
    key = str(pathlib.Path(root))
    store = _STORES.get(key)
    if store is None:
        store = _STORES[key] = ArtifactStore(pathlib.Path(root))
    return store


def reset_stores() -> None:
    """Drop cached instances (tests: clears breaker/warn state)."""
    _STORES.clear()
