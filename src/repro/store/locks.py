"""Crash-tolerant advisory lock for quota-critical store sections.

Quota enforcement needs one short cross-process critical section: two
workers that each observe ``usage + size <= quota`` and then both
publish would overshoot the quota.  :class:`StoreLock` serializes
admission + eviction + publish with an ``O_CREAT|O_EXCL`` lock file —
the same primitive every other multi-process discipline in this repo
is built on (cache temp names, chaos claim markers).

The lock must never outlive a dead holder: a worker SIGKILLed
mid-eviction leaves the file behind, and a sweep that then waited
forever would turn one crash into a wedged store.  Waiters therefore
break a lock whose recorded holder pid is gone, or whose file is older
than ``stale_after`` seconds.  Breaking re-checks the file's identity
(inode + mtime) immediately before the unlink, so a fresh lock created
by a faster waiter in the meantime is not clobbered; the remaining
restat→unlink window is tolerated — the lock guards quota *accounting*,
not data integrity (all data writes stay individually atomic), so the
worst case of a broken-lock race is one transient quota overshoot by a
process that was about to crash anyway.

Readers never take the lock; only admission/eviction/gc do.
"""

from __future__ import annotations

import errno
import json
import os
import pathlib
import time

__all__ = ["StoreLock", "LockTimeout"]


class LockTimeout(OSError):
    """The store lock could not be acquired within the timeout."""


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return True
    return True


class StoreLock:
    """An exclusive advisory lock with dead-holder breaking."""

    def __init__(
        self,
        path: pathlib.Path,
        stale_after: float = 10.0,
        poll: float = 0.005,
    ):
        self.path = pathlib.Path(path)
        self.stale_after = stale_after
        self.poll = poll
        self._held = False

    # -- acquisition ---------------------------------------------------------

    def acquire(self, timeout: float = 30.0) -> None:
        deadline = time.monotonic() + timeout
        while True:
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                self._maybe_break_stale()
            except OSError as exc:
                if exc.errno == errno.ENOENT:
                    # Parent directory vanished (store being torn
                    # down); let the caller's retry discipline decide.
                    raise
                raise
            else:
                try:
                    os.write(
                        fd,
                        json.dumps(
                            {"pid": os.getpid(), "t": time.time()}
                        ).encode(),
                    )
                finally:
                    os.close(fd)
                self._held = True
                return
            if time.monotonic() >= deadline:
                raise LockTimeout(f"store lock {self.path} busy")
            time.sleep(self.poll)

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def __enter__(self) -> "StoreLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    # -- stale-holder breaking -----------------------------------------------

    def _maybe_break_stale(self) -> None:
        """Unlink the lock file if its holder is provably gone."""
        try:
            stat = os.stat(self.path)
        except OSError:
            return  # already released
        holder = -1
        try:
            obj = json.loads(self.path.read_text())
            holder = int(obj.get("pid", -1))
        except (OSError, ValueError, TypeError):
            pass  # torn lock file: age alone decides
        age = time.time() - stat.st_mtime
        if holder > 0 and _pid_alive(holder) and age <= self.stale_after:
            return
        # Generation check: only break the exact lock instance we
        # examined, never a fresh one raced in by another waiter.
        try:
            again = os.stat(self.path)
        except OSError:
            return
        if (again.st_ino, again.st_mtime_ns) != (
            stat.st_ino, stat.st_mtime_ns
        ):
            return
        try:
            os.unlink(self.path)
        except OSError:
            pass
