"""Parallel, persistently-cached experiment harness.

The serial drivers in :mod:`repro.analysis.experiments` sweep
(benchmark, θ, K) cells strictly one after another and remember results
only in per-process ``lru_cache``s.  This module fans the independent
cells of ``fig3_rows`` / ``fig6_rows`` / ``fig7_size_rows`` /
``fig7_time_rows`` across a ``ProcessPoolExecutor`` and stores each
cell's result in an on-disk content-addressed cache, so benchmark
reruns are incremental: a cell recomputes only when the benchmark name,
scale, configuration, or the pipeline itself changes.

Cache keys are the SHA-256 of (cell kind, spec name, scale, canonical
config, :data:`PIPELINE_SALT`).  Bump the salt whenever a pipeline
change can alter measured numbers -- it invalidates every cached cell
at once.

The drivers here mirror the serial ones name-for-name and row-for-row;
``benchmarks/conftest.py`` selects this module when
``REPRO_BENCH_PARALLEL`` is set.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pathlib
from concurrent.futures import ProcessPoolExecutor

from repro.analysis.experiments import (
    FIG3_BOUNDS,
    FIG3_THETAS,
    FIG6_THETAS,
    FIG7_THETAS,
    Fig3Row,
    SizeRow,
    TimeRow,
    baseline_run,
    map_theta,
    squash_benchmark,
    squashed_run,
)
from repro.analysis.stats import geometric_mean
from repro.core.pipeline import SquashConfig
from repro.workloads.mediabench import MEDIABENCH

__all__ = [
    "PIPELINE_SALT",
    "cache_dir",
    "compute_cells",
    "fig3_rows",
    "fig6_rows",
    "fig7_size_rows",
    "fig7_time_rows",
]

#: Cache-invalidation salt: bump on any change that can alter measured
#: sizes, ratios, or cycle counts.
PIPELINE_SALT = "pgcc-pipeline-v1"


def cache_dir() -> pathlib.Path:
    """The on-disk cell cache root (``REPRO_CACHE_DIR`` overrides)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return pathlib.Path(root)
    return pathlib.Path.cwd() / ".repro-cache"


def _workers() -> int:
    env = os.environ.get("REPRO_BENCH_WORKERS")
    if env:
        return max(1, int(env))
    return max(1, os.cpu_count() or 1)


def _canonical(value):
    """A JSON-stable form of configs (dataclasses, enums, sets)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _canonical(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (frozenset, set)):
        return sorted(_canonical(item) for item in value)
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    return value


def _cell_digest(kind: str, name: str, scale: float, config: SquashConfig) -> str:
    payload = json.dumps(
        {
            "kind": kind,
            "name": name,
            "scale": scale,
            "config": _canonical(config),
            "salt": PIPELINE_SALT,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _compute_cell(
    kind: str, name: str, scale: float, config: SquashConfig
) -> dict:
    """One experiment cell, executed in a worker process.

    ``size`` cells squash only; ``time`` cells also run baseline and
    squashed images on the timing input and verify output equivalence.
    """
    if kind == "size":
        result = squash_benchmark(name, scale, config)
        return {
            "footprint_total": result.footprint.total,
            "baseline_words": result.baseline_words,
            "reduction": result.reduction,
        }
    if kind == "time":
        base = baseline_run(name, scale)
        run = squashed_run(name, scale, config)
        if run.output != base.output or run.exit_code != base.exit_code:
            raise AssertionError(
                f"{name}: squashed output diverged at θ={config.theta}"
            )
        return {
            "cycles": run.cycles,
            "base_cycles": base.cycles,
            "relative_time": run.cycles / base.cycles,
        }
    raise ValueError(f"unknown cell kind {kind!r}")


def compute_cells(
    cells: list[tuple[str, str, float, SquashConfig]],
    parallel: bool = True,
    workers: int | None = None,
    cache: bool = True,
) -> dict[tuple[str, str, float, SquashConfig], dict]:
    """Resolve every cell, from disk cache where possible.

    Misses run across a process pool (*parallel*) or inline; every
    fresh result is persisted before returning.
    """
    results: dict[tuple[str, str, float, SquashConfig], dict] = {}
    misses: list[tuple[str, str, float, SquashConfig]] = []
    root = cache_dir()
    paths: dict[tuple[str, str, float, SquashConfig], pathlib.Path] = {}

    for cell in dict.fromkeys(cells):
        digest = _cell_digest(*cell)
        path = root / digest[:2] / f"{digest}.json"
        paths[cell] = path
        if cache and path.exists():
            try:
                results[cell] = json.loads(path.read_text())
                continue
            except (OSError, ValueError):
                pass  # unreadable entry: recompute it
        misses.append(cell)

    if misses:
        if parallel and _workers() > 1 and len(misses) > 1:
            with ProcessPoolExecutor(max_workers=_workers()) as pool:
                futures = [
                    pool.submit(_compute_cell, *cell) for cell in misses
                ]
                fresh = [future.result() for future in futures]
        else:
            fresh = [_compute_cell(*cell) for cell in misses]
        for cell, result in zip(misses, fresh):
            results[cell] = result
            if cache:
                path = paths[cell]
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp = path.with_suffix(".tmp")
                tmp.write_text(json.dumps(result, sort_keys=True))
                tmp.replace(path)
    return results


# -- drivers (row-compatible with repro.analysis.experiments) ---------------


def fig3_rows(
    names: tuple[str, ...],
    scale: float = 1.0,
    bounds: tuple[int, ...] = FIG3_BOUNDS,
    thetas: tuple[float, ...] = FIG3_THETAS,
    parallel: bool = True,
) -> list[Fig3Row]:
    cells = []
    for theta_paper in thetas:
        for bound in bounds:
            config = SquashConfig(
                theta=map_theta(theta_paper)
            ).with_buffer_bound(bound)
            for name in names:
                cells.append(("size", name, scale, config))
    results = compute_cells(cells, parallel=parallel)
    rows = []
    for theta_paper in thetas:
        for bound in bounds:
            config = SquashConfig(
                theta=map_theta(theta_paper)
            ).with_buffer_bound(bound)
            ratios = [
                results[("size", name, scale, config)]["footprint_total"]
                / results[("size", name, scale, config)]["baseline_words"]
                for name in names
            ]
            rows.append(
                Fig3Row(
                    bound_bytes=bound,
                    theta_paper=theta_paper,
                    relative_size=geometric_mean(ratios),
                )
            )
    return rows


def fig6_rows(
    names: tuple[str, ...] = MEDIABENCH,
    scale: float = 1.0,
    thetas: tuple[float, ...] = FIG6_THETAS,
    parallel: bool = True,
) -> list[SizeRow]:
    cells = [
        ("size", name, scale, SquashConfig(theta=map_theta(theta_paper)))
        for name in names
        for theta_paper in thetas
    ]
    results = compute_cells(cells, parallel=parallel)
    rows = []
    for name in names:
        for theta_paper in thetas:
            theta = map_theta(theta_paper)
            cell = ("size", name, scale, SquashConfig(theta=theta))
            rows.append(
                SizeRow(
                    name=name,
                    theta_paper=theta_paper,
                    theta_ours=theta,
                    reduction=results[cell]["reduction"],
                )
            )
    return rows


def fig7_size_rows(
    names: tuple[str, ...] = MEDIABENCH,
    scale: float = 1.0,
    parallel: bool = True,
) -> list[SizeRow]:
    return fig6_rows(
        names, scale=scale, thetas=FIG7_THETAS, parallel=parallel
    )


def fig7_time_rows(
    names: tuple[str, ...] = MEDIABENCH,
    scale: float = 1.0,
    thetas: tuple[float, ...] = FIG7_THETAS,
    parallel: bool = True,
) -> list[TimeRow]:
    cells = [
        ("time", name, scale, SquashConfig(theta=map_theta(theta_paper)))
        for name in names
        for theta_paper in thetas
    ]
    results = compute_cells(cells, parallel=parallel)
    rows = []
    for name in names:
        for theta_paper in thetas:
            theta = map_theta(theta_paper)
            cell = ("time", name, scale, SquashConfig(theta=theta))
            rows.append(
                TimeRow(
                    name=name,
                    theta_paper=theta_paper,
                    theta_ours=theta,
                    relative_time=results[cell]["relative_time"],
                )
            )
    return rows
