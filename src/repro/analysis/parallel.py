"""Parallel, persistently-cached experiment harness.

The serial drivers in :mod:`repro.analysis.experiments` sweep
(benchmark, θ, K) cells strictly one after another and remember results
only in per-process ``lru_cache``s.  This module fans the independent
cells of ``fig3_rows`` / ``fig6_rows`` / ``fig7_size_rows`` /
``fig7_time_rows`` across a ``ProcessPoolExecutor`` and stores each
cell's result in an on-disk content-addressed cache, so benchmark
reruns are incremental: a cell recomputes only when the benchmark name,
scale, configuration, or the pipeline itself changes.

Cache keys are the SHA-256 of (cell kind, spec name, scale, canonical
config, :data:`PIPELINE_SALT`).  Bump the salt whenever a pipeline
change can alter measured numbers -- it invalidates every cached cell
at once.

Execution is supervised (:mod:`repro.resilience`): every miss runs
under per-cell deadlines, bounded retries with deterministic backoff,
automatic pool replacement after a worker death, and a per-benchmark
circuit breaker.  Each fresh result is persisted to the cache — sealed
with a CRC line, written via a unique temp name and atomic rename —
the moment its future completes, so a sweep killed mid-run resumes
from the cache and recomputes only unfinished cells.  A cell that is
still lost after retries surfaces as one typed
:class:`~repro.errors.CellFailure`; completed siblings are never
discarded.  Knobs: ``REPRO_CELL_DEADLINE``, ``REPRO_CELL_RETRIES``,
``REPRO_CELL_BACKOFF``, ``REPRO_BREAKER_THRESHOLD`` (see
:meth:`repro.resilience.SupervisorConfig.from_env`).

The drivers here mirror the serial ones name-for-name and row-for-row;
``benchmarks/conftest.py`` selects this module when
``REPRO_BENCH_PARALLEL`` is set.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import warnings

from repro.analysis.experiments import (
    FIG3_BOUNDS,
    FIG3_THETAS,
    FIG6_THETAS,
    FIG7_THETAS,
    Fig3Row,
    SizeRow,
    TimeRow,
    baseline_run,
    map_theta,
    squash_benchmark,
    squashed_run,
)
from repro import settings as _settings
from repro.analysis.stats import geometric_mean
from repro.core.pipeline import SquashConfig
from repro.errors import StoreDegraded
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.pipeline.artifacts import canonical
from repro.resilience import (
    CacheStats,
    Supervisor,
    SupervisorConfig,
    Task,
)
from repro.store import get_store
from repro.workloads.mediabench import MEDIABENCH

__all__ = [
    "LAST_SWEEP",
    "PIPELINE_SALT",
    "REQUIRED_KEYS",
    "cache_dir",
    "cell_path",
    "compute_cells",
    "fig3_rows",
    "fig6_rows",
    "fig7_size_rows",
    "fig7_time_rows",
    "last_sweep_rollup",
]

#: Cache-invalidation salt: bump on any change that can alter measured
#: sizes, ratios, or cycle counts.
PIPELINE_SALT = "pgcc-pipeline-v1"


def cache_dir() -> pathlib.Path:
    """The on-disk cell cache root (``REPRO_CACHE_DIR`` overrides)."""
    root = _settings.current().cache_dir
    if root:
        return pathlib.Path(root)
    return pathlib.Path.cwd() / ".repro-cache"


def _workers() -> int:
    resolved = _settings.current()
    if "REPRO_BENCH_WORKERS" in resolved.invalid:
        warnings.warn(
            "REPRO_BENCH_WORKERS is not an integer; "
            "falling back to the CPU count",
            RuntimeWarning,
            stacklevel=2,
        )
    return _settings.effective_bench_workers(resolved)


def _cell_digest(kind: str, name: str, scale: float, config: SquashConfig) -> str:
    payload = json.dumps(
        {
            "kind": kind,
            "name": name,
            "scale": scale,
            "config": canonical(config),
            "salt": PIPELINE_SALT,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _stage_bundle(name: str, scale: float):
    """The θ-invariant artifact bundle for a cell, or ``None`` when
    stage reuse is disabled.

    Workers normally find the bundle already persisted (the parent
    warms one per benchmark before fan-out) and only deserialize it;
    on a genuine miss the invariant stages run here, memoized
    per-process, without persisting — publication is the parent's job.
    """
    from repro.analysis import stagecache

    if not stagecache.stage_reuse_enabled():
        return None
    root = cache_dir()
    bundle = stagecache.load_bundle(root, name, scale)
    if bundle is None:
        bundle = stagecache.warm_bundle(root, name, scale, cache=False)
    return bundle


def _compute_cell(
    kind: str, name: str, scale: float, config: SquashConfig
) -> dict:
    """One experiment cell, executed in a worker process.

    ``size`` cells squash only; ``time`` cells also run baseline and
    squashed images on the timing input and verify output equivalence.
    Both start from the shared θ-invariant stage artifacts (squeezed
    program, profile, baseline layout and run) when available, so only
    the cold-set stage onward is recomputed per cell.
    """
    from repro.core.pipeline import squash_program as squash
    from repro.program.layout import TEXT_BASE

    bundle = _stage_bundle(name, scale)
    if kind == "size":
        if bundle is not None:
            result = squash(
                bundle.program,
                bundle.profile,
                config,
                # The persisted baseline was laid out at the default
                # text base; a nonstandard base must re-derive it.
                baseline_words=bundle.baseline_words
                if config.text_base == TEXT_BASE
                else None,
            )
        else:
            result = squash_benchmark(name, scale, config)
        return {
            "footprint_total": result.footprint.total,
            "baseline_words": result.baseline_words,
            "reduction": result.reduction,
        }
    if kind == "time":
        if bundle is not None:
            result = squash(
                bundle.program,
                bundle.profile,
                config,
                baseline_words=bundle.baseline_words
                if config.text_base == TEXT_BASE
                else None,
            )
            run, _ = result.run(
                bundle.timing_input, max_steps=500_000_000
            )
            base_cycles = bundle.base_cycles
            base_output = bundle.base_output
            base_exit = bundle.base_exit_code
        else:
            base = baseline_run(name, scale)
            run = squashed_run(name, scale, config)
            base_cycles = base.cycles
            base_output = base.output
            base_exit = base.exit_code
        if run.output != base_output or run.exit_code != base_exit:
            raise AssertionError(
                f"{name}: squashed output diverged at θ={config.theta}"
            )
        return {
            "cycles": run.cycles,
            "base_cycles": base_cycles,
            "relative_time": run.cycles / base_cycles,
        }
    raise ValueError(f"unknown cell kind {kind!r}")


#: Keys a cached entry must carry to be trusted, per cell kind; an
#: entry missing any (valid JSON or not) is recomputed.
REQUIRED_KEYS = {
    "size": ("footprint_total", "baseline_words", "reduction"),
    "time": ("cycles", "base_cycles", "relative_time"),
}

#: Per-benchmark rollup of the most recent :func:`compute_cells` call;
#: ``repro metrics`` prints it and the obs tests read it.
LAST_SWEEP: dict | None = None


def last_sweep_rollup() -> dict | None:
    """The most recent sweep's rollup (``None`` before any sweep)."""
    return LAST_SWEEP


def _publish_rollup(
    cells: list[tuple[str, str, float, SquashConfig]],
    hits: set,
    failed: set,
) -> None:
    """Record the sweep outcome in :data:`LAST_SWEEP` and mirror the
    tallies into the unified metrics registry (aggregate counters plus
    one counter set per benchmark — bounded cardinality)."""
    global LAST_SWEEP
    metrics = get_registry()
    benches: dict[str, dict[str, int]] = {}
    for cell in cells:
        row = benches.setdefault(
            cell[1], {"cells": 0, "cache_hits": 0, "computed": 0, "failed": 0}
        )
        row["cells"] += 1
        if cell in hits:
            row["cache_hits"] += 1
        elif cell in failed:
            row["failed"] += 1
        else:
            row["computed"] += 1
    rollup = {
        "cells": len(cells),
        "cache_hits": len(hits),
        "failed": len(failed),
        "computed": len(cells) - len(hits) - len(failed),
        "benchmarks": benches,
    }
    LAST_SWEEP = rollup
    for key in ("cells", "cache_hits", "computed", "failed"):
        if rollup[key]:
            metrics.inc(f"sweep.cells.{key}", rollup[key])
    for name, row in benches.items():
        for key, value in row.items():
            if value:
                metrics.inc(f"sweep.bench.{name}.{key}", value)


def cell_path(
    root: pathlib.Path, cell: tuple[str, str, float, SquashConfig]
) -> pathlib.Path:
    return get_store(root).ref_path("cell", _cell_digest(*cell))


def _supervised_cell(cell: tuple[str, str, float, SquashConfig]) -> dict:
    """Worker-side entry: chaos hook, then the real cell.

    The chaos hook is a no-op unless ``REPRO_CHAOS_SPEC`` is armed
    (see :mod:`repro.faultinject.chaos`).
    """
    from repro.faultinject.chaos import maybe_inject

    maybe_inject(_cell_digest(*cell))
    return _compute_cell(*cell)


def _cell_label(cell: tuple[str, str, float, SquashConfig]) -> str:
    kind, name, scale, config = cell
    return f"{kind}:{name} scale={scale} theta={config.theta}"


def _warm_stage_bundles(
    misses: list[tuple[str, str, float, SquashConfig]], cache: bool
) -> None:
    """Materialize one θ-invariant stage bundle per distinct benchmark
    among *misses*, before fan-out.

    With the cell cache enabled the bundle is persisted, so pool
    workers deserialize it instead of re-running squeeze, profiling,
    and the baseline layout and timing run per process.  Every cell of
    the same benchmark then starts at the cold-set stage.
    """
    from repro.analysis import stagecache

    if not stagecache.stage_reuse_enabled():
        return
    root = cache_dir()
    for name, scale in dict.fromkeys(
        (cell[1], cell[2]) for cell in misses
    ):
        try:
            stagecache.warm_bundle(root, name, scale, cache=cache)
        except Exception:
            # Warming is an optimisation; workers recompute on miss.
            continue


def compute_cells(
    cells: list[tuple[str, str, float, SquashConfig]],
    parallel: bool = True,
    workers: int | None = None,
    cache: bool = True,
    config: SupervisorConfig | None = None,
    stats: CacheStats | None = None,
    report_sink: list | None = None,
    strict: bool = True,
) -> dict[tuple[str, str, float, SquashConfig], dict]:
    """Resolve every cell, from disk cache where possible.

    Misses run under the :class:`~repro.resilience.Supervisor` (across
    a process pool when *parallel*, inline otherwise) and every fresh
    result is persisted — sealed and atomically renamed — as soon as
    its future completes, so an interrupted sweep keeps its finished
    cells.  Corrupt, torn, or key-deficient cache entries are detected
    (tallied in *stats*) and recomputed.  When *strict*, a cell still
    missing after bounded retries raises its typed
    :class:`~repro.errors.CellFailure`; pass ``strict=False`` and a
    *report_sink* list to inspect failures instead.
    """
    stats = stats if stats is not None else CacheStats()
    results: dict[tuple[str, str, float, SquashConfig], dict] = {}
    misses: list[tuple[str, str, float, SquashConfig]] = []
    root = cache_dir()
    store = get_store(root)
    digests: dict[tuple[str, str, float, SquashConfig], str] = {}
    tracer = get_tracer()
    unique = list(dict.fromkeys(cells))
    hits: set = set()

    for cell in unique:
        digest = _cell_digest(*cell)
        digests[cell] = digest
        if cache:
            try:
                entry = store.get(
                    "cell", digest, REQUIRED_KEYS.get(cell[0], ()), stats
                )
            except StoreDegraded:
                # Unusable store (breaker open): recompute every cell
                # without caching rather than fail the sweep.
                entry = None
            if entry is not None:
                results[cell] = entry
                hits.add(cell)
                continue
        misses.append(cell)

    if misses:
        _warm_stage_bundles(misses, cache=cache)

        def _persist(task: Task, result: dict) -> None:
            results[task.key] = result
            if cache:
                try:
                    if store.put("cell", digests[task.key], result):
                        stats.writes += 1
                except (OSError, StoreDegraded):
                    # A full, read-only, or degraded store must not
                    # lose the computed value — it just will not be
                    # cached.
                    return

        cfg = config or SupervisorConfig.from_env()
        if workers is not None:
            cfg = dataclasses.replace(cfg, workers=workers)
        elif cfg.workers is None:
            cfg = dataclasses.replace(cfg, workers=_workers())
        supervisor = Supervisor(_supervised_cell, cfg, on_result=_persist)
        tasks = [
            Task(key=cell, payload=cell, cls=cell[1], label=_cell_label(cell))
            for cell in misses
        ]
        with tracer.span(
            "sweep.compute_cells", "sweep",
            misses=len(misses), cached=len(hits), parallel=parallel,
        ):
            report = supervisor.run(tasks, parallel=parallel)
        if report_sink is not None:
            report_sink.append(report)
        _publish_rollup(unique, hits, set(report.failures))
        if report.failures and strict:
            raise next(iter(report.failures.values()))
    else:
        _publish_rollup(unique, hits, set())
    return results


# -- drivers (row-compatible with repro.analysis.experiments) ---------------


def fig3_rows(
    names: tuple[str, ...],
    scale: float = 1.0,
    bounds: tuple[int, ...] = FIG3_BOUNDS,
    thetas: tuple[float, ...] = FIG3_THETAS,
    parallel: bool = True,
) -> list[Fig3Row]:
    cells = []
    for theta_paper in thetas:
        for bound in bounds:
            config = SquashConfig(
                theta=map_theta(theta_paper)
            ).with_buffer_bound(bound)
            for name in names:
                cells.append(("size", name, scale, config))
    results = compute_cells(cells, parallel=parallel)
    rows = []
    for theta_paper in thetas:
        for bound in bounds:
            config = SquashConfig(
                theta=map_theta(theta_paper)
            ).with_buffer_bound(bound)
            ratios = [
                results[("size", name, scale, config)]["footprint_total"]
                / results[("size", name, scale, config)]["baseline_words"]
                for name in names
            ]
            rows.append(
                Fig3Row(
                    bound_bytes=bound,
                    theta_paper=theta_paper,
                    relative_size=geometric_mean(ratios),
                )
            )
    return rows


def fig6_rows(
    names: tuple[str, ...] = MEDIABENCH,
    scale: float = 1.0,
    thetas: tuple[float, ...] = FIG6_THETAS,
    parallel: bool = True,
) -> list[SizeRow]:
    cells = [
        ("size", name, scale, SquashConfig(theta=map_theta(theta_paper)))
        for name in names
        for theta_paper in thetas
    ]
    results = compute_cells(cells, parallel=parallel)
    rows = []
    for name in names:
        for theta_paper in thetas:
            theta = map_theta(theta_paper)
            cell = ("size", name, scale, SquashConfig(theta=theta))
            rows.append(
                SizeRow(
                    name=name,
                    theta_paper=theta_paper,
                    theta_ours=theta,
                    reduction=results[cell]["reduction"],
                )
            )
    return rows


def fig7_size_rows(
    names: tuple[str, ...] = MEDIABENCH,
    scale: float = 1.0,
    parallel: bool = True,
) -> list[SizeRow]:
    return fig6_rows(
        names, scale=scale, thetas=FIG7_THETAS, parallel=parallel
    )


def fig7_time_rows(
    names: tuple[str, ...] = MEDIABENCH,
    scale: float = 1.0,
    thetas: tuple[float, ...] = FIG7_THETAS,
    parallel: bool = True,
) -> list[TimeRow]:
    cells = [
        ("time", name, scale, SquashConfig(theta=map_theta(theta_paper)))
        for name in names
        for theta_paper in thetas
    ]
    results = compute_cells(cells, parallel=parallel)
    rows = []
    for name in names:
        for theta_paper in thetas:
            theta = map_theta(theta_paper)
            cell = ("time", name, scale, SquashConfig(theta=theta))
            rows.append(
                TimeRow(
                    name=name,
                    theta_paper=theta_paper,
                    theta_ours=theta,
                    relative_time=results[cell]["relative_time"],
                )
            )
    return rows
