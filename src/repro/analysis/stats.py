"""Small statistics helpers used by the experiment drivers."""

from __future__ import annotations

import math
from typing import Iterable


def geometric_mean(values: Iterable[float]) -> float:
    """The geometric mean (the paper's aggregate for ratios).

    All values must be positive.
    """
    values = list(values)
    if not values:
        raise ValueError("geometric mean of no values")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of no values")
    return sum(values) / len(values)


def percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"
