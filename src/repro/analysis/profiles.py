"""Profile analysis: the 80/20 structure behind Section 5.

Utilities for inspecting an execution profile the way the paper's
cold-code identification sees it: the weight CDF over frequency
classes (which θ sweeps along), and a hot/cold summary report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import ascii_table
from repro.analysis.stats import percent
from repro.vm.profiler import Profile


@dataclass(frozen=True)
class FrequencyClass:
    """One rung of the frequency ladder."""

    freq: int
    blocks: int
    static_size: int
    weight: int
    #: Cumulative dynamic weight fraction up to and including this
    #: class -- the smallest θ that makes the class cold.
    theta_needed: float
    #: Cumulative static-size fraction that θ would compress.
    cumulative_static_fraction: float


def frequency_classes(profile: Profile) -> list[FrequencyClass]:
    """The profile's frequency classes, coldest first."""
    by_freq: dict[int, list[str]] = {}
    for label, count in profile.counts.items():
        by_freq.setdefault(count, []).append(label)

    total_static = sum(profile.sizes.values()) or 1
    tot = profile.tot_instr_ct or 1
    classes: list[FrequencyClass] = []
    cumulative_weight = 0
    cumulative_static = 0
    for freq in sorted(by_freq):
        labels = by_freq[freq]
        static = sum(profile.sizes[l] for l in labels)
        weight = freq * static
        cumulative_weight += weight
        cumulative_static += static
        classes.append(
            FrequencyClass(
                freq=freq,
                blocks=len(labels),
                static_size=static,
                weight=weight,
                theta_needed=cumulative_weight / tot,
                cumulative_static_fraction=cumulative_static / total_static,
            )
        )
    return classes


def eighty_twenty(profile: Profile) -> tuple[float, float]:
    """The paper's 80-20 intuition, measured: returns (static fraction
    of the hottest blocks that account for 80% of execution, dynamic
    fraction covered by the hottest 20% of static code)."""
    blocks = sorted(
        profile.counts,
        key=lambda l: -(profile.counts[l] * profile.sizes[l]),
    )
    tot = profile.tot_instr_ct or 1
    total_static = sum(profile.sizes.values()) or 1

    static_for_80 = 0
    covered = 0
    for label in blocks:
        if covered >= 0.8 * tot:
            break
        covered += profile.weight(label)
        static_for_80 += profile.sizes[label]

    dynamic_of_top20 = 0
    static_seen = 0
    for label in blocks:
        if static_seen >= 0.2 * total_static:
            break
        static_seen += profile.sizes[label]
        dynamic_of_top20 += profile.weight(label)
    return static_for_80 / total_static, dynamic_of_top20 / tot


def profile_report(profile: Profile, max_rows: int = 15) -> str:
    """A rendered frequency-ladder report."""
    classes = frequency_classes(profile)
    static80, dynamic20 = eighty_twenty(profile)
    header = (
        f"{len(profile.counts)} blocks, {profile.tot_instr_ct} dynamic "
        f"instructions; 80% of execution lives in "
        f"{percent(static80)} of the code, the hottest 20% of code "
        f"covers {percent(dynamic20)} of execution"
    )
    rows = [
        [
            cls.freq,
            cls.blocks,
            cls.static_size,
            cls.weight,
            f"{cls.theta_needed:.2e}",
            percent(cls.cumulative_static_fraction),
        ]
        for cls in classes[:max_rows]
    ]
    if len(classes) > max_rows:
        rows.append(["...", "", "", "", "", ""])
    table = ascii_table(
        ["freq", "blocks", "static", "weight", "θ to compress",
         "cum. static"],
        rows,
        title=header,
    )
    return table
