"""θ-invariant stage artifacts, shared across sweep cells.

A sweep evaluates one benchmark at many configurations, but the first
three pipeline stages — squeeze, profile collection, baseline layout
(and the baseline timing run) — do not depend on θ or on any other
:class:`~repro.core.config.SquashConfig` knob.  This module persists
exactly those artifacts, keyed by ``(benchmark, scale)`` content
digests, through the same crash-safe sealed-entry format as the cell
cache (:mod:`repro.resilience.cache`), so a θ-grid sweep performs the
invariant work once per benchmark and every cell resumes from the
``ColdSet`` stage onward.

The bundle holds the squeezed program in the portable dict form of
:mod:`repro.program.serialize`; round-tripping is exact (block order,
data order, entry, address-taken sets), so a squash over a loaded
bundle is byte-identical to one over a freshly squeezed program — the
golden-equivalence test pins this.

``REPRO_STAGE_REUSE=0`` disables the whole mechanism (every cell falls
back to :func:`~repro.workloads.mediabench.mediabench_program`).
Counters in :data:`STAGE_COUNTERS` record how often the expensive path
ran versus how often a bundle was reused — the sweep tests assert
"once per benchmark" with them.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass

from repro import settings as _settings
from repro.errors import StoreDegraded
from repro.obs.metrics import get_registry
from repro.program.program import Program
from repro.program.serialize import program_from_dict, program_to_dict
from repro.store import get_store
from repro.vm.profiler import Profile

__all__ = [
    "STAGE_COUNTERS",
    "STAGE_SALT",
    "StageBundle",
    "bundle_digest",
    "bundle_path",
    "load_bundle",
    "reset_counters",
    "stage_reuse_enabled",
    "warm_bundle",
]

#: Invalidation salt for stage bundles; bump on any change to squeeze,
#: profiling, baseline layout, or the bundle format itself.
STAGE_SALT = "pgcc-stages-v1"

#: Keys a bundle entry must carry to be trusted.
BUNDLE_KEYS = (
    "program",
    "profile_counts",
    "profile_sizes",
    "tot_instr_ct",
    "baseline_words",
    "timing_input",
    "base_cycles",
    "base_output",
    "base_exit_code",
)

#: How the invariant work was satisfied, process-wide:
#: ``computed`` — full squeeze/profile/baseline ran;
#: ``loaded`` — a persisted bundle was deserialized from disk;
#: ``memo`` — an already-materialized bundle was reused in-process.
STAGE_COUNTERS = {"computed": 0, "loaded": 0, "memo": 0}

_MEMO: dict[tuple[str, float], "StageBundle"] = {}

_METRICS = get_registry()


def _count(key: str) -> None:
    """Bump a stage counter locally and in the unified registry."""
    STAGE_COUNTERS[key] += 1
    _METRICS.inc(f"stagecache.{key}")


def reset_counters() -> None:
    for key in STAGE_COUNTERS:
        STAGE_COUNTERS[key] = 0
    _MEMO.clear()


def stage_reuse_enabled() -> bool:
    """Stage-artifact reuse gate (``REPRO_STAGE_REUSE=0`` disables)."""
    return _settings.current().stage_reuse


@dataclass
class StageBundle:
    """The θ-invariant artifacts of one benchmark at one scale."""

    name: str
    scale: float
    program: Program
    profile: Profile
    baseline_words: int
    timing_input: list[int]
    base_cycles: int
    base_output: list[int]
    base_exit_code: int


def bundle_digest(name: str, scale: float) -> str:
    """Content fingerprint keying the (name, scale) bundle."""
    payload = json.dumps(
        {"name": name, "scale": scale, "salt": STAGE_SALT}, sort_keys=True
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def bundle_path(root: pathlib.Path, name: str, scale: float) -> pathlib.Path:
    """Content-addressed location of the (name, scale) bundle."""
    return get_store(root).ref_path("stage", bundle_digest(name, scale))


def _to_entry(bundle: StageBundle) -> dict:
    return {
        "program": program_to_dict(bundle.program),
        "profile_counts": bundle.profile.counts,
        "profile_sizes": bundle.profile.sizes,
        "tot_instr_ct": bundle.profile.tot_instr_ct,
        "baseline_words": bundle.baseline_words,
        "timing_input": bundle.timing_input,
        "base_cycles": bundle.base_cycles,
        "base_output": bundle.base_output,
        "base_exit_code": bundle.base_exit_code,
    }


def _from_entry(name: str, scale: float, entry: dict) -> StageBundle:
    return StageBundle(
        name=name,
        scale=scale,
        program=program_from_dict(entry["program"]),
        profile=Profile(
            counts=dict(entry["profile_counts"]),
            sizes=dict(entry["profile_sizes"]),
            tot_instr_ct=entry["tot_instr_ct"],
        ),
        baseline_words=entry["baseline_words"],
        timing_input=list(entry["timing_input"]),
        base_cycles=entry["base_cycles"],
        base_output=list(entry["base_output"]),
        base_exit_code=entry["base_exit_code"],
    )


def _compute_bundle(name: str, scale: float) -> StageBundle:
    """Run the invariant stages for real (squeeze, profile, baseline
    layout, baseline timing run)."""
    from repro.analysis.experiments import baseline_run
    from repro.core.metrics import baseline_code_words
    from repro.workloads.mediabench import mediabench_program

    _count("computed")
    bench = mediabench_program(name, scale=scale)
    base = baseline_run(name, scale)
    return StageBundle(
        name=name,
        scale=scale,
        program=bench.squeezed,
        profile=bench.profile,
        baseline_words=baseline_code_words(bench.layout, bench.squeezed),
        timing_input=list(bench.timing_input),
        base_cycles=base.cycles,
        base_output=list(base.output),
        base_exit_code=base.exit_code,
    )


def load_bundle(
    root: pathlib.Path, name: str, scale: float
) -> StageBundle | None:
    """The persisted bundle, or ``None`` on miss / corruption."""
    memo = _MEMO.get((name, scale))
    if memo is not None:
        _count("memo")
        return memo
    try:
        entry = get_store(root).get(
            "stage", bundle_digest(name, scale), BUNDLE_KEYS
        )
    except StoreDegraded:
        entry = None
    if entry is None:
        return None
    try:
        bundle = _from_entry(name, scale, entry)
    except (KeyError, TypeError, ValueError):
        # A stale or malformed bundle must never poison a sweep.
        return None
    _count("loaded")
    _MEMO[(name, scale)] = bundle
    return bundle


def warm_bundle(
    root: pathlib.Path, name: str, scale: float, cache: bool = True
) -> StageBundle:
    """The (name, scale) bundle: loaded when persisted, computed (and
    persisted) otherwise.  Called once per benchmark before fan-out so
    workers only ever take the load path."""
    if cache:
        bundle = load_bundle(root, name, scale)
        if bundle is not None:
            return bundle
    bundle = _compute_bundle(name, scale)
    _MEMO[(name, scale)] = bundle
    if cache:
        try:
            get_store(root).put(
                "stage", bundle_digest(name, scale), _to_entry(bundle)
            )
        except (OSError, StoreDegraded):
            pass
    return bundle
