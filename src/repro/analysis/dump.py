"""Objdump-style listings of loaded images.

Renders an image's segments as annotated disassembly: labels from the
symbol table, decoded instructions where words decode, raw words (tag
words, offset tables, data) where they do not, and resolved targets for
branches and calls.
"""

from __future__ import annotations

from repro.isa.disassembler import disassemble_one
from repro.isa.encoding import decode
from repro.isa.instruction import SENTINEL_WORD
from repro.isa.opcodes import Format
from repro.program.image import LoadedImage

#: Segments rendered as raw words rather than disassembly.
_DATA_SEGMENTS = frozenset(
    {"data", "offset_table", "compressed", "runtime_buffer", "stub_area"}
)


def dump_image(
    image: LoadedImage,
    segments: tuple[str, ...] | None = None,
    max_words_per_segment: int = 2000,
) -> str:
    """Render *image* as an annotated listing."""
    labels_at: dict[int, list[str]] = {}
    for name, addr in image.symbols.items():
        labels_at.setdefault(addr, []).append(name)

    lines: list[str] = []
    for seg in image.segments:
        if segments is not None and seg.name not in segments:
            continue
        lines.append(f"segment {seg.name}: {seg.start:#x}..{seg.end:#x} "
                     f"({seg.size} words)")
        as_code = seg.name not in _DATA_SEGMENTS
        shown = min(seg.size, max_words_per_segment)
        for addr in range(seg.start, seg.start + shown):
            for label in sorted(labels_at.get(addr, ())):
                lines.append(f"{label}:")
            word = image.word(addr)
            lines.append(_render_word(addr, word, as_code))
        if shown < seg.size:
            lines.append(f"  ... {seg.size - shown} more words")
    return "\n".join(lines)


def _render_word(addr: int, word: int, as_code: bool) -> str:
    prefix = f"  {addr:#8x}: {word:08x}"
    if not as_code:
        return prefix
    if word == SENTINEL_WORD:
        return f"{prefix}  sentinel"
    try:
        instr = decode(word)
    except Exception:
        return f"{prefix}  .word"
    text = disassemble_one(instr)
    if instr.format is Format.BRA:
        target = addr + 1 + instr.imm
        text += f"    ; -> {target:#x}"
    return f"{prefix}  {text}"


def dump_region(image: LoadedImage, descriptor, region_index: int) -> str:
    """Disassemble one compressed region as it would appear in the
    runtime buffer (decoding it from the image's compressed area)."""
    from repro.compress.codec import ProgramCodec
    from repro.compress.streams import OP_XCALLD, OP_XCALLI

    table = [
        image.word(descriptor.table_addr + index)
        for index in range(descriptor.table_words)
    ]
    stream = [
        image.word(descriptor.stream_addr + index)
        for index in range(descriptor.stream_words)
    ]
    codec = ProgramCodec.from_table_words(table)
    region = descriptor.region(region_index)
    items, bits = codec.decode_region(stream, region.bit_offset)
    lines = [
        f"region {region_index}: bit offset {region.bit_offset}, "
        f"{len(items)} items, {bits} bits, expands to "
        f"{region.expanded_size} words at {region.base:#x}"
    ]
    slot_of_block = {
        slot: label for label, slot in region.block_slots.items()
    }
    slot = 1
    for item in items:
        if slot in slot_of_block:
            lines.append(f"{slot_of_block[slot]}:")
        if item.opcode == OP_XCALLD:
            lines.append(f"  [{slot:>4}] xcalld r{item.fields[0]} "
                         f"(expands to bsr+br)")
            slot += 2
        elif item.opcode == OP_XCALLI:
            lines.append(f"  [{slot:>4}] xcalli r{item.fields[0]}, "
                         f"(r{item.fields[1]}) (expands to bsr+jsr)")
            slot += 2
        else:
            from repro.compress.streams import codec_to_instruction

            lines.append(
                f"  [{slot:>4}] {disassemble_one(codec_to_instruction(item))}"
            )
            slot += 1
    return "\n".join(lines)
