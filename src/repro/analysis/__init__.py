"""Statistics, table rendering, and the paper's experiment drivers."""

from repro.analysis.stats import geometric_mean
from repro.analysis.report import ascii_table, bar_chart
from repro.analysis.profiles import (
    frequency_classes,
    eighty_twenty,
    profile_report,
)
from repro.analysis.dump import dump_image, dump_region
from repro.analysis.experiments import (
    THETA_SCALE,
    map_theta,
    FIG6_THETAS,
    FIG7_THETAS,
    table1_rows,
    fig3_rows,
    fig4_rows,
    fig6_rows,
    fig7_size_rows,
    fig7_time_rows,
    restore_stub_stats,
    compression_ratio_stats,
    buffer_safe_stats,
)

__all__ = [
    "geometric_mean",
    "ascii_table",
    "bar_chart",
    "frequency_classes",
    "eighty_twenty",
    "profile_report",
    "dump_image",
    "dump_region",
    "THETA_SCALE",
    "map_theta",
    "FIG6_THETAS",
    "FIG7_THETAS",
    "table1_rows",
    "fig3_rows",
    "fig4_rows",
    "fig6_rows",
    "fig7_size_rows",
    "fig7_time_rows",
    "restore_stub_stats",
    "compression_ratio_stats",
    "buffer_safe_stats",
]
