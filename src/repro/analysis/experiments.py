"""Drivers for every table and figure in the paper's evaluation.

θ mapping.  The paper's thresholds are fractions of the *total dynamic
instruction count*; its profiling runs execute 10^8-10^9 instructions,
ours execute ~10^6 (a pure-Python VM).  A frequency class of
once-executed code that is x% of a program's static size therefore has
a relative dynamic weight ~100x larger here, so the θ axis is shifted:
we evaluate each paper threshold θ_p at θ_ours = min(1, 100 · θ_p),
and report both values.  θ = 0 and θ = 1 are fixed points of the
mapping.  EXPERIMENTS.md discusses the effect.

These drivers are strictly serial and memoise only per-process
(``lru_cache``); :mod:`repro.analysis.parallel` provides row-identical
equivalents with a supervised worker pool and a crash-safe on-disk
cell cache.  ``repro chaossweep`` asserts the equivalence holds even
under injected process faults — these serial rows are its ground
truth, so changes here invalidate that gate's reference as well as the
parallel cache salt.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache

from repro.analysis.stats import geometric_mean
from repro.core.descriptor import BufferStrategy, RestoreStubScheme
from repro.core.coldcode import cold_code_stats
from repro.core.pipeline import SquashConfig, SquashResult
from repro.core.pipeline import squash_program as squash
from repro.vm.machine import Machine, RunResult
from repro.workloads.mediabench import MEDIABENCH, mediabench_program

#: Ratio between the paper's profiling-run length and ours.
THETA_SCALE = 100.0

#: Paper-nominal θ grids of Figure 6 and Figure 7.
FIG6_THETAS = (0.0, 1e-5, 1e-4, 1e-3, 1e-2, 1.0)
FIG7_THETAS = (0.0, 1e-5, 5e-5)
#: Buffer bounds (bytes) swept in Figure 3, and its three thresholds.
FIG3_BOUNDS = (64, 128, 256, 512, 1024, 2048)
FIG3_THETAS = (0.0, 1e-5, 1e-4)


def map_theta(theta_paper: float) -> float:
    """Our θ equivalent of a paper-nominal threshold."""
    if theta_paper <= 0.0:
        return 0.0
    return min(1.0, theta_paper * THETA_SCALE)


@lru_cache(maxsize=None)
def squash_benchmark(
    name: str, scale: float, config: SquashConfig
) -> SquashResult:
    """Squash one benchmark at one configuration (cached)."""
    bench = mediabench_program(name, scale=scale)
    return squash(bench.squeezed, bench.profile, config)


@lru_cache(maxsize=None)
def baseline_run(name: str, scale: float) -> RunResult:
    """Run the squeezed (uncompressed) benchmark on its timing input."""
    bench = mediabench_program(name, scale=scale)
    machine = Machine(bench.layout.image, input_words=bench.timing_input)
    return machine.run()


@lru_cache(maxsize=None)
def squashed_run(
    name: str, scale: float, config: SquashConfig
) -> RunResult:
    """Run the squashed benchmark on its timing input."""
    bench = mediabench_program(name, scale=scale)
    result = squash_benchmark(name, scale, config)
    run, _ = result.run(bench.timing_input, max_steps=500_000_000)
    return run


# -- Table 1 -----------------------------------------------------------------

#: Paper values: name -> (input instrs, squeezed instrs).
TABLE1_PAPER = {
    "adpcm": (18228, 11690),
    "epic": (33880, 24769),
    "g721_dec": (15089, 12008),
    "g721_enc": (15065, 11771),
    "gsm": (29789, 21597),
    "jpeg_dec": (44094, 37042),
    "jpeg_enc": (38701, 32168),
    "mpeg2dec": (37833, 27942),
    "mpeg2enc": (47152, 36062),
    "pgp": (83726, 60003),
    "rasta": (91359, 65273),
}


@dataclass(frozen=True)
class Table1Row:
    name: str
    input_size: int
    squeeze_size: int
    paper_input: int
    paper_squeeze: int

    @property
    def reduction(self) -> float:
        return 1.0 - self.squeeze_size / self.input_size

    @property
    def paper_reduction(self) -> float:
        return 1.0 - self.paper_squeeze / self.paper_input


def table1_rows(
    names: tuple[str, ...] = MEDIABENCH, scale: float = 1.0
) -> list[Table1Row]:
    rows = []
    for name in names:
        bench = mediabench_program(name, scale=scale)
        paper_input, paper_squeeze = TABLE1_PAPER[name]
        rows.append(
            Table1Row(
                name=name,
                input_size=bench.input_size,
                squeeze_size=bench.squeeze_size,
                paper_input=int(paper_input * scale),
                paper_squeeze=int(paper_squeeze * scale),
            )
        )
    return rows


# -- Figure 3: buffer bound sweep ---------------------------------------------


@dataclass(frozen=True)
class Fig3Row:
    bound_bytes: int
    theta_paper: float
    #: Geometric mean of squashed size / squeezed size.
    relative_size: float


def fig3_rows(
    names: tuple[str, ...],
    scale: float = 1.0,
    bounds: tuple[int, ...] = FIG3_BOUNDS,
    thetas: tuple[float, ...] = FIG3_THETAS,
) -> list[Fig3Row]:
    rows = []
    for theta_paper in thetas:
        for bound in bounds:
            config = SquashConfig(theta=map_theta(theta_paper)).with_buffer_bound(
                bound
            )
            ratios = []
            for name in names:
                result = squash_benchmark(name, scale, config)
                ratios.append(
                    result.footprint.total / result.baseline_words
                )
            rows.append(
                Fig3Row(
                    bound_bytes=bound,
                    theta_paper=theta_paper,
                    relative_size=geometric_mean(ratios),
                )
            )
    return rows


# -- Figure 4: cold and compressible code -------------------------------------


@dataclass(frozen=True)
class Fig4Row:
    theta_paper: float
    theta_ours: float
    cold_fraction: float
    compressible_fraction: float


def fig4_rows(
    names: tuple[str, ...] = MEDIABENCH,
    scale: float = 1.0,
    thetas: tuple[float, ...] = FIG6_THETAS,
) -> list[Fig4Row]:
    rows = []
    for theta_paper in thetas:
        theta = map_theta(theta_paper)
        config = SquashConfig(theta=theta)
        cold_fracs = []
        comp_fracs = []
        for name in names:
            bench = mediabench_program(name, scale=scale)
            result = squash_benchmark(name, scale, config)
            stats = cold_code_stats(
                bench.profile, theta, result.info.compressed_blocks
            )
            # Avoid zero fractions in the geometric mean.
            cold_fracs.append(max(stats.cold_fraction, 1e-6))
            comp_fracs.append(max(stats.compressible_fraction, 1e-6))
        rows.append(
            Fig4Row(
                theta_paper=theta_paper,
                theta_ours=theta,
                cold_fraction=geometric_mean(cold_fracs),
                compressible_fraction=geometric_mean(comp_fracs),
            )
        )
    return rows


# -- Figures 6 / 7(a): code-size reduction --------------------------------------


@dataclass(frozen=True)
class SizeRow:
    name: str
    theta_paper: float
    theta_ours: float
    reduction: float


def fig6_rows(
    names: tuple[str, ...] = MEDIABENCH,
    scale: float = 1.0,
    thetas: tuple[float, ...] = FIG6_THETAS,
) -> list[SizeRow]:
    rows = []
    for name in names:
        for theta_paper in thetas:
            theta = map_theta(theta_paper)
            result = squash_benchmark(name, scale, SquashConfig(theta=theta))
            rows.append(
                SizeRow(
                    name=name,
                    theta_paper=theta_paper,
                    theta_ours=theta,
                    reduction=result.reduction,
                )
            )
    return rows


def fig7_size_rows(
    names: tuple[str, ...] = MEDIABENCH, scale: float = 1.0
) -> list[SizeRow]:
    return fig6_rows(names, scale=scale, thetas=FIG7_THETAS)


# -- Figure 7(b): execution time -------------------------------------------------


@dataclass(frozen=True)
class TimeRow:
    name: str
    theta_paper: float
    theta_ours: float
    #: Squashed cycles / squeezed cycles on the timing input.
    relative_time: float


def fig7_time_rows(
    names: tuple[str, ...] = MEDIABENCH,
    scale: float = 1.0,
    thetas: tuple[float, ...] = FIG7_THETAS,
) -> list[TimeRow]:
    rows = []
    for name in names:
        base = baseline_run(name, scale)
        for theta_paper in thetas:
            theta = map_theta(theta_paper)
            run = squashed_run(name, scale, SquashConfig(theta=theta))
            if run.output != base.output or run.exit_code != base.exit_code:
                raise AssertionError(
                    f"{name}: squashed output diverged at θ={theta}"
                )
            rows.append(
                TimeRow(
                    name=name,
                    theta_paper=theta_paper,
                    theta_ours=theta,
                    relative_time=run.cycles / base.cycles,
                )
            )
    return rows


# -- In-text experiments ----------------------------------------------------------


@dataclass(frozen=True)
class RestoreStubRow:
    name: str
    #: Compile-time scheme: stub words as a fraction of the
    #: never-compressed code (paper: 13% avg / 20% max at θ=0; 27% avg
    #: at θ=0.01).
    compile_time_fraction: float
    #: Runtime scheme: maximum concurrently-live stubs on the timing
    #: run (paper: at most 9).
    max_live_stubs: int
    stubs_created: int
    stubs_freed: int


def restore_stub_stats(
    names: tuple[str, ...],
    scale: float = 1.0,
    theta_paper: float = 0.0,
) -> list[RestoreStubRow]:
    theta = map_theta(theta_paper)
    rows = []
    for name in names:
        bench = mediabench_program(name, scale=scale)
        ct_config = SquashConfig(
            theta=theta, restore_scheme=RestoreStubScheme.COMPILE_TIME
        )
        ct = squash_benchmark(name, scale, ct_config)
        never = max(1, ct.footprint.never_compressed)
        fraction = ct.footprint.stub_area / never

        rt_config = SquashConfig(theta=theta)
        result = squash_benchmark(name, scale, rt_config)
        _, runtime = result.run(
            bench.timing_input, max_steps=500_000_000
        )
        rows.append(
            RestoreStubRow(
                name=name,
                compile_time_fraction=fraction,
                max_live_stubs=runtime.stats.max_live_stubs,
                stubs_created=runtime.stats.stubs_created,
                stubs_freed=runtime.stats.stubs_freed,
            )
        )
    return rows


@dataclass(frozen=True)
class CompressionRow:
    name: str
    #: Total compressed size (tables + stream) over original words.
    ratio: float
    #: Stream-only ratio (excludes the per-program tables).
    stream_ratio: float


def compression_ratio_stats(
    names: tuple[str, ...],
    scale: float = 1.0,
    config: SquashConfig | None = None,
) -> list[CompressionRow]:
    """Measured compression factor with everything compressed (θ=1).

    The paper reports "approximately 66% of its original size"."""
    config = config or SquashConfig(theta=1.0)
    config = replace(config, theta=1.0)
    rows = []
    for name in names:
        result = squash_benchmark(name, scale, config)
        blob = result.info.blob
        original = max(1, result.info.compressed_original_instrs)
        rows.append(
            CompressionRow(
                name=name,
                ratio=result.info.gamma_measured,
                stream_ratio=(blob.stream_bits / 32.0) / original
                if blob
                else 1.0,
            )
        )
    return rows


@dataclass(frozen=True)
class BufferSafeRow:
    name: str
    #: Buffer-safe functions / all functions.
    safe_function_fraction: float
    #: Calls from compressed code whose callee is buffer-safe.
    safe_call_fraction: float


def buffer_safe_stats(
    names: tuple[str, ...],
    scale: float = 1.0,
    theta_paper: float = 0.0,
) -> list[BufferSafeRow]:
    theta = map_theta(theta_paper)
    rows = []
    for name in names:
        result = squash_benchmark(name, scale, SquashConfig(theta=theta))
        info = result.info
        bench = mediabench_program(name, scale=scale)
        n_functions = max(1, len(bench.squeezed.functions))
        calls = (
            info.safe_calls
            + info.intra_region_calls
            + info.xcall_sites
        )
        rows.append(
            BufferSafeRow(
                name=name,
                safe_function_fraction=len(info.safe_functions) / n_functions,
                safe_call_fraction=info.safe_calls / calls if calls else 0.0,
            )
        )
    return rows
