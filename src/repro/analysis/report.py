"""Plain-text rendering of experiment tables and figures."""

from __future__ import annotations

from typing import Sequence


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned plain-text table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def line(values: Sequence[str]) -> str:
        return "  ".join(
            value.rjust(widths[index]) if index else value.ljust(widths[0])
            for index, value in enumerate(values)
        )

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * width for width in widths))
    parts.extend(line(row) for row in cells)
    return "\n".join(parts)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str | None = None,
    fmt: str = "{:.3f}",
) -> str:
    """A horizontal ASCII bar chart (for figure-style output)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    top = max(values) if values else 1.0
    top = top if top > 0 else 1.0
    label_width = max((len(label) for label in labels), default=0)
    parts = []
    if title:
        parts.append(title)
    for label, value in zip(labels, values):
        bar = "#" * max(0, round(width * value / top))
        parts.append(
            f"{label.ljust(label_width)} | {bar} {fmt.format(value)}"
        )
    return "\n".join(parts)
