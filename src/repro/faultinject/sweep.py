"""Seeded fault-injection sweeps over a squashed image.

:func:`run_sweep` takes one clean :class:`~repro.core.pipeline.
SquashResult`, runs it once for a baseline, then applies *n* planned
faults (one fresh machine each) and classifies every run:

``detected``
    The run raised a :class:`~repro.errors.SquashError` subclass --
    the integrity machinery caught the fault.  Cache-poison faults
    whose tampered entry was rejected by its seal (and whose run then
    matched the baseline exactly) also count as detected.
``benign``
    The run completed with output, exit code, and cycle count
    identical to the clean baseline (e.g. a flip in a region this
    input never decompresses -- the whole-stream CRC only runs once
    the decompressor is first invoked).
``silent``
    The run completed but *diverged* from the baseline, or a poisoned
    cache entry was executed.  **This is the failure mode the
    integrity format must rule out; a sweep asserts zero of these.**
``escaped``
    The run died on a non-structured error (a raw machine fault).
    The fault was not silent, but it bypassed the taxonomy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core import runtime as runtime_mod
from repro.core.pipeline import SquashResult
from repro.core.runtime import SquashRuntime, clear_region_decode_cache
from repro.errors import SquashError
from repro.faultinject.inject import (
    CONTEXT_FAULT_KINDS,
    FAULT_KINDS,
    FaultSpec,
    apply_fault,
    plan_fault,
)
from repro.vm.machine import Machine, RunResult

__all__ = ["FaultOutcome", "SweepReport", "run_sweep", "sweep_program"]


@dataclass
class FaultOutcome:
    """Classification of one injected fault."""

    index: int
    spec: FaultSpec
    status: str  # detected | benign | silent | escaped
    error_type: str = ""
    message: str = ""


@dataclass
class SweepReport:
    """Aggregate result of one sweep."""

    seed: int
    faults: int
    detected: int = 0
    benign: int = 0
    silent: int = 0
    escaped: int = 0
    #: Every non-benign outcome (and every silent/escaped one).
    outcomes: list[FaultOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no fault misexecuted silently."""
        return self.silent == 0

    def record(self, outcome: FaultOutcome) -> None:
        setattr(self, outcome.status, getattr(self, outcome.status) + 1)
        if outcome.status != "benign":
            self.outcomes.append(outcome)

    def render(self) -> str:
        lines = [
            f"fault sweep: {self.faults} faults, seed {self.seed}",
            f"  detected {self.detected}  benign {self.benign}  "
            f"silent {self.silent}  escaped {self.escaped}",
            f"  verdict: {'OK' if self.ok else 'SILENT MISEXECUTION'}",
        ]
        for outcome in self.outcomes:
            if outcome.status in ("silent", "escaped"):
                lines.append(
                    f"  [{outcome.index}] {outcome.status.upper()}  "
                    f"{outcome.spec.describe()}  "
                    f"{outcome.error_type}: {outcome.message}"
                )
        return "\n".join(lines)


def _same_run(a: RunResult, b: RunResult) -> bool:
    return (
        a.exit_code == b.exit_code
        and a.output == b.output
        and a.cycles == b.cycles
    )


def _run_faulty(
    result: SquashResult,
    input_words,
    spec: FaultSpec,
    max_steps: int,
) -> tuple[RunResult | None, BaseException | None]:
    image, descriptor = apply_fault(result.image, result.descriptor, spec)
    runtime = SquashRuntime(descriptor, region_cache=False)
    machine = Machine(
        image, input_words=input_words, services=runtime.services()
    )
    try:
        return machine.run(max_steps=max_steps), None
    except BaseException as exc:  # classified by the caller
        return None, exc


def _run_cache_poison(
    result: SquashResult,
    input_words,
    clean: RunResult,
    spec: FaultSpec,
    rng: random.Random,
    max_steps: int,
    index: int,
) -> FaultOutcome:
    """Populate the region decode cache, tamper with one entry (keeping
    its now-stale seal), and re-run: the seal must reject the entry and
    the re-decoded run must match the baseline exactly."""
    clear_region_decode_cache()
    machine, _ = result.make_machine(input_words, region_cache=True)
    machine.run(max_steps=max_steps)
    cache = runtime_mod._REGION_DECODE_CACHE
    if not cache:
        clear_region_decode_cache()
        return FaultOutcome(
            index=index, spec=spec, status="benign",
            message="no cache entries to poison",
        )
    key = rng.choice(sorted(cache, key=repr))
    items, bits, seal = cache[key]
    if spec.mode == "bits" or not items:
        cache[key] = (items, bits + 64, seal)
    else:
        cache[key] = (items + (items[0],), bits, seal)
    machine, runtime = result.make_machine(input_words, region_cache=True)
    try:
        rerun = machine.run(max_steps=max_steps)
    except SquashError as exc:
        clear_region_decode_cache()
        return FaultOutcome(
            index=index, spec=spec, status="detected",
            error_type=type(exc).__name__, message=str(exc),
        )
    except BaseException as exc:
        clear_region_decode_cache()
        return FaultOutcome(
            index=index, spec=spec, status="escaped",
            error_type=type(exc).__name__, message=str(exc),
        )
    clear_region_decode_cache()
    if not _same_run(clean, rerun):
        return FaultOutcome(
            index=index, spec=spec, status="silent",
            message="poisoned cache entry changed the run",
        )
    if runtime.stats.cache_rejects:
        return FaultOutcome(
            index=index, spec=spec, status="detected",
            error_type="seal-reject",
            message=f"{runtime.stats.cache_rejects} poisoned "
            f"entries rejected; run identical",
        )
    return FaultOutcome(
        index=index, spec=spec, status="benign",
        message="poisoned entry never hit",
    )


def run_sweep(
    result: SquashResult,
    input_words,
    faults: int,
    seed: int = 0,
    kinds: tuple[str, ...] = FAULT_KINDS,
    max_steps: int = 500_000_000,
) -> SweepReport:
    """Inject *faults* seeded faults into *result* and classify each.

    All non-poison runs use a private runtime with the cross-runtime
    decode cache off, so faults cannot leak between runs.
    """
    clean, _ = result.run(
        input_words, max_steps=max_steps, region_cache=False
    )
    rng = random.Random(seed)
    report = SweepReport(seed=seed, faults=faults)
    for index in range(faults):
        kind = kinds[rng.randrange(len(kinds))]
        spec = plan_fault(kind, result.descriptor, rng, result.image)
        if kind == "cache-poison":
            report.record(
                _run_cache_poison(
                    result, input_words, clean, spec, rng, max_steps, index
                )
            )
            continue
        run, exc = _run_faulty(result, input_words, spec, max_steps)
        if exc is not None:
            if isinstance(exc, SquashError):
                report.record(
                    FaultOutcome(
                        index=index, spec=spec, status="detected",
                        error_type=type(exc).__name__, message=str(exc),
                    )
                )
            else:
                report.record(
                    FaultOutcome(
                        index=index, spec=spec, status="escaped",
                        error_type=type(exc).__name__, message=str(exc),
                    )
                )
        elif _same_run(clean, run):
            report.record(
                FaultOutcome(index=index, spec=spec, status="benign")
            )
        else:
            report.record(
                FaultOutcome(
                    index=index, spec=spec, status="silent",
                    message=f"run diverged: cycles {clean.cycles} -> "
                    f"{run.cycles}, output "
                    f"{'same' if run.output == clean.output else 'DIFFERS'}",
                )
            )
    return report


def sweep_program(
    name: str,
    scale: float,
    faults: int,
    seed: int = 0,
    theta: float = 0.0,
    bound: int = 512,
    kinds: tuple[str, ...] = FAULT_KINDS,
    codec_variant: str = "",
) -> SweepReport:
    """Convenience: squash one MediaBench benchmark and sweep it.

    *codec_variant* selects a codec registry entry (see
    :data:`repro.compress.codec.CODEC_VARIANTS`).  When *kinds* is left
    at its default, the CodecModel fault kinds are appended
    automatically for images that qualify: ``context-seal-corrupt``
    whenever per-context seals are present, ``context-index-corrupt``
    when the codec conditions at least one stream.
    """
    from repro.analysis.experiments import squash_benchmark
    from repro.core.pipeline import SquashConfig
    from repro.workloads.mediabench import mediabench_program

    config = SquashConfig(
        theta=theta, codec_variant=codec_variant
    ).with_buffer_bound(bound)
    result = squash_benchmark(name, scale, config)
    if kinds is FAULT_KINDS:
        kinds = kinds + _applicable_context_kinds(result)
    bench = mediabench_program(name, scale=scale)
    return run_sweep(result, bench.timing_input, faults, seed, kinds)


def _applicable_context_kinds(result: SquashResult) -> tuple[str, ...]:
    """The :data:`CONTEXT_FAULT_KINDS` subset *result* can express."""
    integ = result.descriptor.integrity
    if integ is None or not integ.contexts:
        return ()
    kinds: tuple[str, ...] = ("context-seal-corrupt",)
    if any(record.ctx > 0 for record in integ.contexts):
        kinds += ("context-index-corrupt",)
    return kinds
