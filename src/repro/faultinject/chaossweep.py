"""End-to-end chaos sweep: the execution path under process faults.

``repro chaossweep`` proves the supervised sweep harness converges to
the *exact* numbers a fault-free serial run produces, while absorbing
deterministic process-level chaos:

1. **Pass 1** computes every (fig3 ∪ fig6 ∪ fig7b) cell of one
   benchmark through :func:`repro.analysis.parallel.compute_cells`
   with a chaos plan armed — workers are killed (``os._exit``), hung
   past the supervisor deadline, and OOM-simulated, per the
   deterministic plan of :func:`repro.faultinject.chaos.
   plan_process_chaos`.  Completed cells are persisted to a private
   cache as they finish.
2. **Cache faults** are then applied to a subset of the persisted
   entries: torn writes (truncation), garbage bytes, payload bit flips
   under an intact seal, and resealed entries missing required keys.
3. **Pass 2** re-resolves every cell from that cache: every corrupted
   entry must be *detected* (tallied by reject reason) and recomputed;
   intact entries must be served as hits.
4. The figure rows are rebuilt from the surviving cache and compared —
   row for row, byte for byte of the rendered text — against the
   serial, fault-free drivers in :mod:`repro.analysis.experiments`.

The sweep **fails** (non-zero exit) if any cell was lost, any planned
fault did not fire or was not accounted for, any corrupted entry went
undetected, or any row diverged.
"""

from __future__ import annotations

import contextlib
import os
import pathlib
import random
import shutil
import tempfile
from dataclasses import dataclass, field

from repro.analysis import experiments as serial
from repro.analysis import parallel as par
from repro.analysis.experiments import (
    FIG3_BOUNDS,
    FIG3_THETAS,
    FIG6_THETAS,
    FIG7_THETAS,
    map_theta,
)
from repro.core.pipeline import SquashConfig
from repro.faultinject import chaos
from repro.resilience import CacheStats, RetryPolicy, SupervisorConfig

__all__ = ["ChaosSweepReport", "chaos_cells", "run_chaos_sweep"]

Cell = tuple[str, str, float, SquashConfig]


@dataclass
class ChaosSweepReport:
    """Everything one chaos sweep observed, and its verdict."""

    name: str
    scale: float
    seed: int
    faults: int
    #: Planned process faults by kind (kill/hang/oom).
    planned_process: dict[str, int] = field(default_factory=dict)
    #: Process faults that actually fired, by kind.
    fired_process: dict[str, int] = field(default_factory=dict)
    #: Cache faults applied by mode.
    planned_cache: dict[str, int] = field(default_factory=dict)
    #: Pass-2 cache rejections by reason.
    cache_rejects: dict[str, int] = field(default_factory=dict)
    #: Supervision failure events of pass 1 by kind
    #: (crash/timeout/error/preempted).
    events: dict[str, int] = field(default_factory=dict)
    pool_rebuilds: int = 0
    cells: int = 0
    lost_cells: int = 0
    rows_match: bool = False

    @property
    def planned_total(self) -> int:
        return sum(self.planned_process.values()) + sum(
            self.planned_cache.values()
        )

    @property
    def process_faults_ok(self) -> bool:
        return self.fired_process == self.planned_process

    @property
    def cache_faults_ok(self) -> bool:
        return sum(self.cache_rejects.values()) == sum(
            self.planned_cache.values()
        )

    @property
    def ok(self) -> bool:
        return (
            self.lost_cells == 0
            and self.rows_match
            and self.process_faults_ok
            and self.cache_faults_ok
        )

    def render(self) -> str:
        def _fmt(counts: dict[str, int]) -> str:
            if not counts:
                return "none"
            return "  ".join(
                f"{kind} {count}" for kind, count in sorted(counts.items())
            )

        return "\n".join(
            [
                f"chaos sweep: {self.name} scale={self.scale} "
                f"seed={self.seed}, {self.planned_total} faults over "
                f"{self.cells} cells",
                f"  process faults planned: {_fmt(self.planned_process)}",
                f"  process faults fired:   {_fmt(self.fired_process)}"
                f"  [{'OK' if self.process_faults_ok else 'MISSING'}]",
                f"  supervision events:     {_fmt(self.events)}  "
                f"(pool rebuilds {self.pool_rebuilds})",
                f"  cache faults applied:   {_fmt(self.planned_cache)}",
                f"  cache faults detected:  {_fmt(self.cache_rejects)}"
                f"  [{'OK' if self.cache_faults_ok else 'UNDETECTED'}]",
                f"  cells lost: {self.lost_cells}   rows "
                f"{'identical to serial run' if self.rows_match else 'DIVERGED'}",
                f"  verdict: {'OK' if self.ok else 'FAILED'}",
            ]
        )


@contextlib.contextmanager
def _env(**pairs: str | None):
    saved = {key: os.environ.get(key) for key in pairs}
    for key, value in pairs.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def chaos_cells(
    name: str, scale: float, cell_sets: tuple[str, ...] = ("fig3", "fig6", "fig7b")
) -> list[Cell]:
    """The distinct experiment cells the sweep exercises."""
    cells: list[Cell] = []
    if "fig3" in cell_sets:
        for theta_paper in FIG3_THETAS:
            for bound in FIG3_BOUNDS:
                config = SquashConfig(
                    theta=map_theta(theta_paper)
                ).with_buffer_bound(bound)
                cells.append(("size", name, scale, config))
    if "fig6" in cell_sets:
        for theta_paper in FIG6_THETAS:
            config = SquashConfig(theta=map_theta(theta_paper))
            cells.append(("size", name, scale, config))
    if "fig7b" in cell_sets:
        for theta_paper in FIG7_THETAS:
            config = SquashConfig(theta=map_theta(theta_paper))
            cells.append(("time", name, scale, config))
    return list(dict.fromkeys(cells))


def _reference_rows(name: str, scale: float, cell_sets: tuple[str, ...], module):
    """The figure rows from *module*'s drivers (serial or cached)."""
    rows = []
    kwargs = {} if module is serial else {"parallel": False}
    if "fig3" in cell_sets:
        rows.append(module.fig3_rows((name,), scale=scale, **kwargs))
    if "fig6" in cell_sets:
        rows.append(module.fig6_rows((name,), scale=scale, **kwargs))
    if "fig7b" in cell_sets:
        rows.append(module.fig7_time_rows((name,), scale=scale, **kwargs))
    return rows


def run_chaos_sweep(
    name: str,
    scale: float = 0.2,
    faults: int = 60,
    seed: int = 0,
    workers: int | None = None,
    deadline: float = 15.0,
    cache_root: str | None = None,
    cell_sets: tuple[str, ...] = ("fig3", "fig6", "fig7b"),
    max_hangs: int | None = None,
) -> ChaosSweepReport:
    """Run one full chaos sweep on *name*; see the module docstring."""
    # A chaos sweep needs a real pool even on a single-CPU host: kills
    # and hangs are only meaningful against disposable workers.
    if workers is None:
        workers = max(2, os.cpu_count() or 1)
    cells = chaos_cells(name, scale, cell_sets)
    digests = [par._cell_digest(*cell) for cell in cells]
    report = ChaosSweepReport(
        name=name, scale=scale, seed=seed, faults=faults, cells=len(cells)
    )

    # Fault budget: most faults are process-level; a fifth (at least
    # four, at most one per entry) are cache corruptions.
    cache_faults = min(len(cells), max(4, faults // 5))
    process_faults = max(0, faults - cache_faults)
    max_per_cell = max(1, -(-process_faults // len(cells)))  # ceil
    plan = chaos.plan_process_chaos(
        digests, process_faults, seed,
        max_per_cell=max_per_cell, max_hangs=max_hangs,
    )
    for kinds in plan.values():
        for kind in kinds:
            report.planned_process[kind] = (
                report.planned_process.get(kind, 0) + 1
            )

    root = pathlib.Path(cache_root) if cache_root else pathlib.Path(
        tempfile.mkdtemp(prefix="repro-chaos-")
    )
    counter_dir = root / ".chaos-exec"
    spec = chaos.ChaosSpec(
        seed=seed,
        plan=plan,
        hang_seconds=deadline * 3.0,
        counter_dir=str(counter_dir),
    )
    # Retry budget must outlast the worst-faulted cell plus collateral
    # (a neighbour's kill fails every in-flight future); the breaker is
    # disabled — every cell here shares one class, and convergence, not
    # fail-fast, is what the sweep asserts.
    chaos_config = SupervisorConfig(
        workers=workers,
        deadline=deadline,
        retry=RetryPolicy(
            max_attempts=max_per_cell + 3,
            backoff_base=0.02,
            backoff_cap=0.2,
            crash_cap_factor=16,
        ),
        breaker_threshold=0,
    )

    try:
        # -- pass 1: compute everything under process chaos ------------
        sink: list = []
        with _env(
            REPRO_CACHE_DIR=str(root), REPRO_CHAOS_SPEC=spec.to_env()
        ):
            results = par.compute_cells(
                cells, parallel=True, config=chaos_config,
                strict=False, report_sink=sink,
            )
        if sink:
            report.pool_rebuilds = sink[0].pool_rebuilds
            for event in sink[0].events:
                report.events[event.kind] = (
                    report.events.get(event.kind, 0) + 1
                )
        report.fired_process = chaos.fired_counts(counter_dir)
        report.lost_cells = len(cells) - len(results)

        # -- cache faults: corrupt persisted entries -------------------
        rng = random.Random(seed + 1)
        present = [
            path for path in (par.cell_path(root, cell) for cell in cells)
            if path.exists()
        ]
        targets = rng.sample(present, min(cache_faults, len(present)))
        for index, path in enumerate(targets):
            mode = chaos.CACHE_FAULT_KINDS[index % len(chaos.CACHE_FAULT_KINDS)]
            chaos.corrupt_entry(path, mode, rng)
            report.planned_cache[mode] = report.planned_cache.get(mode, 0) + 1

        # -- pass 2: resume from the damaged cache ---------------------
        stats = CacheStats()
        with _env(REPRO_CACHE_DIR=str(root), REPRO_CHAOS_SPEC=None):
            results = par.compute_cells(
                cells, parallel=False, stats=stats, strict=False,
            )
            report.cache_rejects = dict(stats.rejects)
            report.lost_cells = max(
                report.lost_cells, len(cells) - len(results)
            )

            # -- rows: cached harness vs fault-free serial drivers -----
            chaos_rows = _reference_rows(name, scale, cell_sets, par)
        serial_rows = _reference_rows(name, scale, cell_sets, serial)
        report.rows_match = repr(chaos_rows) == repr(serial_rows)
    finally:
        if cache_root is None:
            shutil.rmtree(root, ignore_errors=True)
    return report
