"""Process-level chaos: deterministic worker kills, hangs, OOMs, and
cache corruption for sweep supervision testing.

PR 2's fault injection perturbs the *data* path (bits of a squashed
image); this module perturbs the *execution* path that produces every
paper number.  A chaos plan assigns each targeted cell digest a short
list of fault kinds, consumed in **execution order**: the first time a
worker starts that cell it suffers ``plan[digest][0]``, the second time
``plan[digest][1]``, and once the list is exhausted the cell computes
normally.  Execution order is tracked with ``O_CREAT|O_EXCL`` counter
files in the cache directory, so the count is exact across worker
processes, across pool rebuilds, and across driver restarts — every
planned fault fires exactly once no matter how the supervisor
interleaves retries.

The plan travels to workers via the ``REPRO_CHAOS_SPEC`` environment
variable (inherited by pool processes).  Without it, the hook is a
no-op costing one dict lookup.

Fault kinds
-----------
``kill``
    ``os._exit(137)`` — a real worker death: the pool breaks and the
    supervisor must rebuild it.
``hang``
    Sleep past the supervisor's deadline (then raise, in case no
    deadline is armed) — exercises timeout handling and worker
    termination.
``oom``
    Raise :class:`MemoryError` — an allocation failure the pool
    survives; exercises plain retry.

Cache faults (:func:`corrupt_entry`) are applied by the driver to
on-disk entries: truncation (a torn write), garbage bytes, a payload
bit flip under an intact seal, and a resealed entry missing required
keys.  Each must be *detected* by the cache loader and recomputed.

Store faults (``REPRO_STORE_CHAOS`` / :func:`maybe_store_fault`)
perturb the unified artifact store from the *inside*: ``enospc``
raises ``OSError(ENOSPC)`` from the store's object-write path (after
the temp file is created, before it is published — a full disk at the
worst moment), and ``kill_evict`` delivers ``os._exit(137)`` in the
middle of an eviction pass, right after a victim ref is unlinked and
before its object is collected — the maximally awkward crash point,
leaving both an orphan object and a held store lock behind.  Budgets
are consumed through the same ``O_EXCL`` marker-file discipline as
process faults, so each injected fault fires exactly once across any
number of workers.  Manifest corruption needs no hook: the driver
corrupts the sealed snapshot directly with :func:`corrupt_entry`.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
from dataclasses import dataclass, field

from repro.resilience.cache import seal_text

__all__ = [
    "PROCESS_FAULT_KINDS",
    "CACHE_FAULT_KINDS",
    "STORE_FAULT_KINDS",
    "ENV_SPEC",
    "ENV_STORE_SPEC",
    "ChaosSpec",
    "ChaosHang",
    "ChaosKill",
    "StoreChaosSpec",
    "plan_process_chaos",
    "maybe_inject",
    "maybe_store_fault",
    "fired_counts",
    "corrupt_entry",
]

ENV_SPEC = "REPRO_CHAOS_SPEC"
ENV_STORE_SPEC = "REPRO_STORE_CHAOS"

PROCESS_FAULT_KINDS = ("kill", "hang", "oom")
CACHE_FAULT_KINDS = ("truncate", "garbage", "bitflip", "missing-keys")
#: Store-internal fault kinds: ``enospc`` (object write fails with a
#: full disk) and ``kill_evict`` (SIGKILL-equivalent death mid-evict).
STORE_FAULT_KINDS = ("enospc", "kill_evict")


class ChaosHang(RuntimeError):
    """A simulated hang outlived its sleep (no deadline was armed)."""


class ChaosKill(RuntimeError):
    """A ``kill``/``hang`` fault fired outside a disposable pool worker.

    ``os._exit`` in the driver (or a sleep in an inline run) would take
    the sweep down with it — exactly what chaos must not do — so
    process-destroying faults degrade to this typed, retryable error
    when no supervisor pool worker is hosting the cell.
    """


@dataclass
class ChaosSpec:
    """One sweep's process-chaos plan."""

    seed: int
    #: digest -> fault kinds, consumed in execution order.
    plan: dict[str, list[str]] = field(default_factory=dict)
    #: How long a ``hang`` fault sleeps (set it above the supervisor
    #: deadline so the timeout path, not the sleep, resolves it).
    hang_seconds: float = 30.0
    #: Directory for execution-counter files.
    counter_dir: str = ""

    @property
    def planned_faults(self) -> int:
        return sum(len(kinds) for kinds in self.plan.values())

    def to_env(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "plan": self.plan,
                "hang_seconds": self.hang_seconds,
                "counter_dir": self.counter_dir,
            }
        )

    @classmethod
    def from_env(cls, raw: str) -> "ChaosSpec":
        obj = json.loads(raw)
        return cls(
            seed=int(obj.get("seed", 0)),
            plan={k: list(v) for k, v in obj.get("plan", {}).items()},
            hang_seconds=float(obj.get("hang_seconds", 30.0)),
            counter_dir=str(obj.get("counter_dir", "")),
        )


def plan_process_chaos(
    digests: list[str],
    faults: int,
    seed: int,
    kinds: tuple[str, ...] = PROCESS_FAULT_KINDS,
    max_per_cell: int = 3,
    max_hangs: int | None = None,
) -> dict[str, list[str]]:
    """Deterministically spread *faults* fault events over *digests*.

    Faults are dealt round-robin (every cell suffers before any cell
    suffers twice) and capped at *max_per_cell* per digest so the
    supervisor's retry budget can always outlast the plan.  Hangs burn
    a full deadline of wall clock each, so they are additionally capped
    by *max_hangs* (default: one per four faults).
    """
    if not digests:
        return {}
    capacity = len(digests) * max_per_cell
    if faults > capacity:
        raise ValueError(
            f"cannot plan {faults} faults over {len(digests)} cells "
            f"(max {capacity} at {max_per_cell} per cell)"
        )
    if max_hangs is None:
        max_hangs = max(1, faults // 4)
    rng = random.Random(seed)
    order = sorted(digests)
    rng.shuffle(order)
    plan: dict[str, list[str]] = {}
    hangs = 0
    for index in range(faults):
        digest = order[index % len(order)]
        choices = [k for k in kinds if k != "hang" or hangs < max_hangs]
        kind = rng.choice(choices)
        if kind == "hang":
            hangs += 1
        plan.setdefault(digest, []).append(kind)
    return plan


_SPEC_CACHE: dict[str, ChaosSpec] = {}


def _active_spec() -> ChaosSpec | None:
    raw = os.environ.get(ENV_SPEC, "")
    if not raw:
        return None
    spec = _SPEC_CACHE.get(raw)
    if spec is None:
        try:
            spec = ChaosSpec.from_env(raw)
        except (ValueError, TypeError):
            return None
        _SPEC_CACHE[raw] = spec
    return spec


def _claim_next_fault(
    counter_dir: pathlib.Path, digest: str, kinds: list[str]
) -> tuple[int, str] | None:
    """Atomically claim the next unfired planned fault of *digest*.

    The ``O_CREAT|O_EXCL`` marker file *is* the claim **and** the fired
    record, created in one atomic step before the fault is delivered:
    a worker that is torn down violently right after claiming (say, a
    sibling's kill broke the pool first) still dies — the fault is
    delivered as a process death either way — and the claim guarantees
    each planned fault is consumed exactly once, no matter how the
    supervisor interleaves retries and rebuilds.
    """
    counter_dir.mkdir(parents=True, exist_ok=True)
    for index, kind in enumerate(kinds):
        marker = counter_dir / f"{digest}.{index}.fired-{kind}"
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(fd)
        return index, kind
    return None


def fired_counts(counter_dir: pathlib.Path) -> dict[str, int]:
    """Process faults that actually fired, by kind, from the markers."""
    counts: dict[str, int] = {}
    if not counter_dir.is_dir():
        return counts
    for marker in counter_dir.iterdir():
        _, sep, kind = marker.name.partition(".fired-")
        if sep:
            counts[kind] = counts.get(kind, 0) + 1
    return counts


def maybe_inject(digest: str) -> None:
    """Worker-side hook: fire this execution's planned fault, if any.

    Called at the top of every supervised cell execution; a no-op
    unless ``REPRO_CHAOS_SPEC`` is armed and this digest still has
    planned faults left.
    """
    spec = _active_spec()
    if spec is None:
        return
    kinds = spec.plan.get(digest)
    if not kinds:
        return
    claimed = _claim_next_fault(pathlib.Path(spec.counter_dir), digest, kinds)
    if claimed is None:
        return  # all planned faults delivered: compute normally
    index, kind = claimed
    if kind in ("kill", "hang"):
        from repro.resilience.supervisor import in_pool_worker

        if not in_pool_worker():
            raise ChaosKill(
                f"chaos {kind} fired inline (cell {digest[:12]}, "
                f"attempt {index}); degraded to an error"
            )
    if kind == "kill":
        os._exit(137)
    if kind == "hang":
        import time

        time.sleep(spec.hang_seconds)
        raise ChaosHang(
            f"simulated hang slept {spec.hang_seconds}s without being "
            f"reaped (no supervisor deadline?)"
        )
    if kind == "oom":
        raise MemoryError(f"chaos oom (cell {digest[:12]}, attempt {index})")
    raise ValueError(f"unknown chaos fault kind {kind!r}")


@dataclass
class StoreChaosSpec:
    """Budgeted faults delivered from inside the artifact store.

    Travels to workers via ``REPRO_STORE_CHAOS``; budgets are consumed
    exactly once each through ``O_EXCL`` markers in ``counter_dir``.
    """

    #: How many object writes fail with ``OSError(ENOSPC)``.
    enospc: int = 0
    #: How many eviction passes die (``os._exit(137)``) mid-victim.
    kill_evict: int = 0
    #: Directory for the exactly-once claim markers.
    counter_dir: str = ""
    #: Allow ``kill_evict`` to take down a non-pool process.  Chaos
    #: harnesses that wrap the store in a disposable subprocess set
    #: this; without it an inline kill degrades to :class:`ChaosKill`
    #: so armed chaos can never take the driver down.
    inline_kill_ok: bool = False

    def to_env(self) -> str:
        return json.dumps(
            {
                "enospc": self.enospc,
                "kill_evict": self.kill_evict,
                "counter_dir": self.counter_dir,
                "inline_kill_ok": self.inline_kill_ok,
            }
        )

    @classmethod
    def from_env(cls, raw: str) -> "StoreChaosSpec":
        obj = json.loads(raw)
        return cls(
            enospc=int(obj.get("enospc", 0)),
            kill_evict=int(obj.get("kill_evict", 0)),
            counter_dir=str(obj.get("counter_dir", "")),
            inline_kill_ok=bool(obj.get("inline_kill_ok", False)),
        )


_STORE_SPEC_CACHE: dict[str, StoreChaosSpec] = {}


def _active_store_spec() -> StoreChaosSpec | None:
    raw = os.environ.get(ENV_STORE_SPEC, "")
    if not raw:
        return None
    spec = _STORE_SPEC_CACHE.get(raw)
    if spec is None:
        try:
            spec = StoreChaosSpec.from_env(raw)
        except (ValueError, TypeError):
            return None
        _STORE_SPEC_CACHE[raw] = spec
    return spec


def maybe_store_fault(point: str) -> None:
    """Store-side hook: fire an armed store fault at *point*.

    Called from inside :mod:`repro.store` at its two most fragile
    moments — ``write`` (object bytes about to be published) and
    ``evict`` (a victim ref just unlinked, its object not yet
    collected).  A no-op unless ``REPRO_STORE_CHAOS`` is armed with
    budget left for the point; each budgeted fault fires exactly once
    across all processes sharing the counter dir.
    """
    spec = _active_store_spec()
    if spec is None or not spec.counter_dir:
        return
    counter_dir = pathlib.Path(spec.counter_dir)
    if point == "write" and spec.enospc > 0:
        claimed = _claim_next_fault(
            counter_dir, "store-write", ["enospc"] * spec.enospc
        )
        if claimed is not None:
            import errno

            raise OSError(errno.ENOSPC, "chaos: injected ENOSPC")
    elif point == "evict" and spec.kill_evict > 0:
        claimed = _claim_next_fault(
            counter_dir, "store-evict", ["kill_evict"] * spec.kill_evict
        )
        if claimed is not None:
            from repro.resilience.supervisor import in_pool_worker

            if in_pool_worker() or spec.inline_kill_ok:
                os._exit(137)
            raise ChaosKill(
                "chaos kill_evict fired inline; degraded to an error"
            )


def corrupt_entry(path: pathlib.Path, mode: str, rng: random.Random) -> None:
    """Apply one *mode* cache fault to the entry at *path* in place."""
    data = path.read_bytes()
    if mode == "truncate":
        # A torn write: keep a strict prefix.
        cut = rng.randrange(1, max(2, len(data)))
        path.write_bytes(data[:cut])
    elif mode == "garbage":
        path.write_bytes(bytes(rng.randrange(256) for _ in range(48)))
    elif mode == "bitflip":
        # Flip one payload bit, leaving the (now stale) seal intact.
        blob = bytearray(data)
        limit = max(1, blob.find(b"\n"))
        pos = rng.randrange(limit)
        blob[pos] ^= 1 << rng.randrange(8)
        path.write_bytes(bytes(blob))
    elif mode == "missing-keys":
        # Perfectly sealed, perfectly parseable, and useless.
        path.write_text(seal_text(json.dumps({"bogus": True})))
    else:
        raise ValueError(f"unknown cache fault mode {mode!r}")
