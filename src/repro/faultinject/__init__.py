"""Deterministic fault injection for the squashed-image runtime.

The harness perturbs a squashed image (bit flips in the compressed
stream, codec tables, or offset table; stream truncation; offset-table
corruption; region-decode-cache poisoning) and asserts that every fault
is *detected* -- the run raises a :class:`~repro.errors.SquashError`
subclass -- or *provably benign* -- the run's output, exit code, and
cycle count are identical to the clean run.  A fault that changes
behaviour without raising is a **silent misexecution**, the failure
mode the integrity format exists to rule out.
"""

from repro.faultinject.inject import (
    FAULT_KINDS,
    FaultSpec,
    apply_fault,
    plan_fault,
)
from repro.faultinject.sweep import (
    FaultOutcome,
    SweepReport,
    run_sweep,
    sweep_program,
)

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "apply_fault",
    "plan_fault",
    "FaultOutcome",
    "SweepReport",
    "run_sweep",
    "sweep_program",
]
