"""Deterministic fault injection for the squashed-image runtime.

The harness perturbs a squashed image (bit flips in the compressed
stream, codec tables, or offset table; stream truncation; offset-table
corruption; region-decode-cache poisoning; mis-sealed or mis-indexed
context tables of CodecModel images) and asserts that every fault
is *detected* -- the run raises a :class:`~repro.errors.SquashError`
subclass -- or *provably benign* -- the run's output, exit code, and
cycle count are identical to the clean run.  A fault that changes
behaviour without raising is a **silent misexecution**, the failure
mode the integrity format exists to rule out.

Alongside the bit-level harness, :mod:`repro.faultinject.chaos` and
:mod:`repro.faultinject.chaossweep` perturb the *execution* path:
deterministic worker kills, hangs, OOM simulations, and cache-entry
corruption injected into a supervised figure sweep, which must still
converge to rows identical to a fault-free serial run.
"""

from repro.faultinject.chaos import (
    CACHE_FAULT_KINDS,
    PROCESS_FAULT_KINDS,
    STORE_FAULT_KINDS,
    ChaosSpec,
    StoreChaosSpec,
    corrupt_entry,
    maybe_inject,
    maybe_store_fault,
    plan_process_chaos,
)
from repro.faultinject.chaossweep import (
    ChaosSweepReport,
    chaos_cells,
    run_chaos_sweep,
)
from repro.faultinject.storechaos import (
    StoreChaosReport,
    run_store_chaos,
)
from repro.faultinject.servechaos import (
    SCENARIOS as SERVE_CHAOS_SCENARIOS,
    ServeChaosReport,
    run_serve_chaos,
)
from repro.faultinject.inject import (
    CONTEXT_FAULT_KINDS,
    FAULT_KINDS,
    FaultSpec,
    apply_fault,
    plan_fault,
)
from repro.faultinject.sweep import (
    FaultOutcome,
    SweepReport,
    run_sweep,
    sweep_program,
)

__all__ = [
    "CONTEXT_FAULT_KINDS",
    "FAULT_KINDS",
    "FaultSpec",
    "apply_fault",
    "plan_fault",
    "FaultOutcome",
    "SweepReport",
    "run_sweep",
    "sweep_program",
    "PROCESS_FAULT_KINDS",
    "CACHE_FAULT_KINDS",
    "STORE_FAULT_KINDS",
    "ChaosSpec",
    "StoreChaosSpec",
    "plan_process_chaos",
    "maybe_inject",
    "maybe_store_fault",
    "corrupt_entry",
    "ChaosSweepReport",
    "chaos_cells",
    "run_chaos_sweep",
    "StoreChaosReport",
    "run_store_chaos",
    "SERVE_CHAOS_SCENARIOS",
    "ServeChaosReport",
    "run_serve_chaos",
]
