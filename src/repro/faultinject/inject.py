"""Fault planning and application.

A fault is planned against a descriptor (picking concrete coordinates
with a seeded RNG) and then applied to *copies* of the image memory and
descriptor, so one clean :class:`~repro.core.pipeline.SquashResult` can
absorb thousands of independent faults.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass

from repro.core.descriptor import SquashDescriptor
from repro.program.image import LoadedImage

#: Fault kinds the planner can draw from.  ``cache-poison`` is planned
#: here but applied by the sweep (it tampers with runtime state, not
#: the image).
FAULT_KINDS = (
    "bitflip-stream",
    "bitflip-table",
    "bitflip-offsets",
    "truncate-stream",
    "offset-corrupt",
    "cache-poison",
)


@dataclass(frozen=True)
class FaultSpec:
    """One concrete, reproducible fault.

    ``kind`` is one of :data:`FAULT_KINDS`; the remaining fields are
    the coordinates the planner chose (unused ones stay at their
    defaults), so re-applying the same spec reproduces the same fault.
    """

    kind: str
    #: Absolute word address the fault lands on (bit flips, offset
    #: corruption).
    addr: int = 0
    #: Bit within the word (bit flips).
    bit: int = 0
    #: Words dropped from the stream tail (truncation).
    drop_words: int = 0
    #: Replacement value (offset corruption).
    value: int = 0
    #: Cache-poison mode: "items" or "bits".
    mode: str = ""

    def describe(self) -> str:
        if self.kind in ("bitflip-stream", "bitflip-table", "bitflip-offsets"):
            return f"{self.kind} @ {self.addr:#x} bit {self.bit}"
        if self.kind == "truncate-stream":
            return f"truncate-stream by {self.drop_words} words"
        if self.kind == "offset-corrupt":
            return f"offset-corrupt @ {self.addr:#x} -> {self.value}"
        return f"cache-poison ({self.mode})"


def plan_fault(
    kind: str, descriptor: SquashDescriptor, rng: random.Random
) -> FaultSpec:
    """Pick concrete coordinates for a *kind* fault against an image
    laid out per *descriptor*."""
    desc = descriptor
    if kind == "bitflip-stream":
        addr = desc.stream_addr + rng.randrange(desc.stream_words)
        return FaultSpec(kind=kind, addr=addr, bit=rng.randrange(32))
    if kind == "bitflip-table":
        addr = desc.table_addr + rng.randrange(desc.table_words)
        return FaultSpec(kind=kind, addr=addr, bit=rng.randrange(32))
    if kind == "bitflip-offsets":
        addr = desc.offset_table_addr + rng.randrange(
            max(len(desc.regions), 1)
        )
        return FaultSpec(kind=kind, addr=addr, bit=rng.randrange(32))
    if kind == "truncate-stream":
        drop = rng.randrange(1, max(desc.stream_words, 2))
        return FaultSpec(kind=kind, drop_words=drop)
    if kind == "offset-corrupt":
        index = rng.randrange(max(len(desc.regions), 1))
        addr = desc.offset_table_addr + index
        good = desc.regions[index].bit_offset if desc.regions else 0
        value = good
        while value == good:
            value = rng.randrange(max(desc.stream_words * 32, 2))
        return FaultSpec(kind=kind, addr=addr, value=value)
    if kind == "cache-poison":
        return FaultSpec(kind=kind, mode=rng.choice(("items", "bits")))
    raise ValueError(f"unknown fault kind {kind!r}")


def apply_fault(
    image: LoadedImage, descriptor: SquashDescriptor, spec: FaultSpec
) -> tuple[LoadedImage, SquashDescriptor]:
    """Apply *spec* to copies of (*image*, *descriptor*).

    The originals are never mutated.  ``cache-poison`` has no image
    effect and returns unmodified copies (the sweep tampers with the
    decode cache instead).
    """
    memory = list(image.memory)
    faulty_image = dataclasses.replace(image, memory=memory)
    faulty_desc = descriptor

    if spec.kind in ("bitflip-stream", "bitflip-table", "bitflip-offsets"):
        index = spec.addr - image.base
        memory[index] ^= 1 << spec.bit
    elif spec.kind == "truncate-stream":
        # Shrink the stream the decompressor can see and clobber the
        # dropped tail.  (The address space keeps its size so the heap
        # and stack bases stay put -- a shifted heap would make even
        # unrelated runs diverge for reasons the integrity format is
        # not about; whole-*file* truncation is the image CRC footer's
        # job and is tested separately.)
        drop = min(spec.drop_words, descriptor.stream_words - 1)
        new_words = descriptor.stream_words - drop
        cut = descriptor.stream_addr + new_words - image.base
        for index in range(cut, cut + drop):
            memory[index] = 0
        faulty_desc = dataclasses.replace(
            descriptor, stream_words=new_words
        )
    elif spec.kind == "offset-corrupt":
        memory[spec.addr - image.base] = spec.value
    elif spec.kind != "cache-poison":
        raise ValueError(f"unknown fault kind {spec.kind!r}")
    return faulty_image, faulty_desc
