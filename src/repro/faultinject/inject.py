"""Fault planning and application.

A fault is planned against a descriptor (picking concrete coordinates
with a seeded RNG) and then applied to *copies* of the image memory and
descriptor, so one clean :class:`~repro.core.pipeline.SquashResult` can
absorb thousands of independent faults.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass

from repro.core.descriptor import SquashDescriptor
from repro.program.image import LoadedImage

#: Fault kinds the planner can draw from.  ``cache-poison`` is planned
#: here but applied by the sweep (it tampers with runtime state, not
#: the image).
FAULT_KINDS = (
    "bitflip-stream",
    "bitflip-table",
    "bitflip-offsets",
    "truncate-stream",
    "offset-corrupt",
    "cache-poison",
)

#: CodecModel-specific fault kinds, applicable only to images whose
#: integrity metadata carries per-context table seals
#: (``context-seal-corrupt``) or whose codec conditions a stream
#: (``context-index-corrupt``).  The sweep appends them when the image
#: qualifies.
CONTEXT_FAULT_KINDS = (
    "context-seal-corrupt",
    "context-index-corrupt",
)


@dataclass(frozen=True)
class FaultSpec:
    """One concrete, reproducible fault.

    ``kind`` is one of :data:`FAULT_KINDS`; the remaining fields are
    the coordinates the planner chose (unused ones stay at their
    defaults), so re-applying the same spec reproduces the same fault.
    """

    kind: str
    #: Absolute word address the fault lands on (bit flips, offset
    #: corruption).
    addr: int = 0
    #: Bit within the word (bit flips).
    bit: int = 0
    #: Words dropped from the stream tail (truncation).
    drop_words: int = 0
    #: Replacement value (offset corruption).
    value: int = 0
    #: Cache-poison mode: "items" or "bits".
    mode: str = ""

    def describe(self) -> str:
        if self.kind in ("bitflip-stream", "bitflip-table", "bitflip-offsets"):
            return f"{self.kind} @ {self.addr:#x} bit {self.bit}"
        if self.kind == "truncate-stream":
            return f"truncate-stream by {self.drop_words} words"
        if self.kind == "offset-corrupt":
            return f"offset-corrupt @ {self.addr:#x} -> {self.value}"
        if self.kind == "context-seal-corrupt":
            return (
                f"context-seal-corrupt record {self.addr} bit {self.bit}"
            )
        if self.kind == "context-index-corrupt":
            return (
                f"context-index-corrupt @ table bit {self.addr} "
                f"-> {self.value}"
            )
        return f"cache-poison ({self.mode})"


def plan_fault(
    kind: str,
    descriptor: SquashDescriptor,
    rng: random.Random,
    image: LoadedImage | None = None,
) -> FaultSpec:
    """Pick concrete coordinates for a *kind* fault against an image
    laid out per *descriptor*.

    The context fault kinds need more than the descriptor: the seal
    fault needs ``integrity.contexts``, and the index fault parses the
    codec tables out of *image* to find a conditioned stream's mapping
    array.
    """
    desc = descriptor
    if kind == "context-seal-corrupt":
        contexts = (
            desc.integrity.contexts if desc.integrity is not None else []
        )
        if not contexts:
            raise ValueError(
                "context-seal-corrupt needs per-context integrity records"
            )
        return FaultSpec(
            kind=kind,
            addr=rng.randrange(len(contexts)),
            bit=rng.randrange(32),
        )
    if kind == "context-index-corrupt":
        if image is None:
            raise ValueError("context-index-corrupt needs the image")
        from repro.compress.codec import ProgramCodec
        from repro.compress.model import context_domain
        from repro.isa.fields import FieldKind

        start = desc.table_addr - image.base
        table = image.memory[start : start + desc.table_words]
        codec = ProgramCodec.from_table_words(table)
        layouts = [
            layout
            for layout in codec.table_layouts.values()
            if layout.n_contexts > 1
        ]
        if not layouts:
            raise ValueError(
                "context-index-corrupt needs a conditioned stream"
            )
        layout = layouts[rng.randrange(len(layouts))]
        domain = context_domain(FieldKind(layout.kind))
        entry = rng.randrange(domain)
        return FaultSpec(
            kind=kind,
            addr=layout.mapping_start_bit + entry * layout.ctx_bits,
            bit=layout.ctx_bits,
            value=layout.n_contexts,
        )
    if kind == "bitflip-stream":
        addr = desc.stream_addr + rng.randrange(desc.stream_words)
        return FaultSpec(kind=kind, addr=addr, bit=rng.randrange(32))
    if kind == "bitflip-table":
        addr = desc.table_addr + rng.randrange(desc.table_words)
        return FaultSpec(kind=kind, addr=addr, bit=rng.randrange(32))
    if kind == "bitflip-offsets":
        addr = desc.offset_table_addr + rng.randrange(
            max(len(desc.regions), 1)
        )
        return FaultSpec(kind=kind, addr=addr, bit=rng.randrange(32))
    if kind == "truncate-stream":
        drop = rng.randrange(1, max(desc.stream_words, 2))
        return FaultSpec(kind=kind, drop_words=drop)
    if kind == "offset-corrupt":
        index = rng.randrange(max(len(desc.regions), 1))
        addr = desc.offset_table_addr + index
        good = desc.regions[index].bit_offset if desc.regions else 0
        value = good
        while value == good:
            value = rng.randrange(max(desc.stream_words * 32, 2))
        return FaultSpec(kind=kind, addr=addr, value=value)
    if kind == "cache-poison":
        return FaultSpec(kind=kind, mode=rng.choice(("items", "bits")))
    raise ValueError(f"unknown fault kind {kind!r}")


def apply_fault(
    image: LoadedImage, descriptor: SquashDescriptor, spec: FaultSpec
) -> tuple[LoadedImage, SquashDescriptor]:
    """Apply *spec* to copies of (*image*, *descriptor*).

    The originals are never mutated.  ``cache-poison`` has no image
    effect and returns unmodified copies (the sweep tampers with the
    decode cache instead).
    """
    memory = list(image.memory)
    faulty_image = dataclasses.replace(image, memory=memory)
    faulty_desc = descriptor

    if spec.kind in ("bitflip-stream", "bitflip-table", "bitflip-offsets"):
        index = spec.addr - image.base
        memory[index] ^= 1 << spec.bit
    elif spec.kind == "truncate-stream":
        # Shrink the stream the decompressor can see and clobber the
        # dropped tail.  (The address space keeps its size so the heap
        # and stack bases stay put -- a shifted heap would make even
        # unrelated runs diverge for reasons the integrity format is
        # not about; whole-*file* truncation is the image CRC footer's
        # job and is tested separately.)
        drop = min(spec.drop_words, descriptor.stream_words - 1)
        new_words = descriptor.stream_words - drop
        cut = descriptor.stream_addr + new_words - image.base
        for index in range(cut, cut + drop):
            memory[index] = 0
        faulty_desc = dataclasses.replace(
            descriptor, stream_words=new_words
        )
    elif spec.kind == "offset-corrupt":
        memory[spec.addr - image.base] = spec.value
    elif spec.kind == "context-seal-corrupt":
        # The image stays clean; the descriptor's stored seal lies.
        integ = descriptor.integrity
        contexts = list(integ.contexts)
        record = contexts[spec.addr]
        contexts[spec.addr] = dataclasses.replace(
            record, crc=(record.crc ^ (1 << spec.bit)) & 0xFFFFFFFF
        )
        faulty_desc = dataclasses.replace(
            descriptor,
            integrity=dataclasses.replace(integ, contexts=contexts),
        )
    elif spec.kind == "context-index-corrupt":
        # Rewrite one mapping entry to an out-of-range context index.
        # The mapping sits outside every per-context span, so the
        # seals still pass; the whole-area table CRC is recomputed so
        # the *parser* (not the checksum) is what catches the fault.
        base_index = descriptor.table_addr - image.base
        _write_table_bits(
            memory, base_index, spec.addr, spec.bit, spec.value
        )
        integ = descriptor.integrity
        if integ is not None:
            from repro.core.integrity import words_crc

            table = memory[
                base_index : base_index + descriptor.table_words
            ]
            faulty_desc = dataclasses.replace(
                descriptor,
                integrity=dataclasses.replace(
                    integ, table_crc=words_crc(table)
                ),
            )
    elif spec.kind != "cache-poison":
        raise ValueError(f"unknown fault kind {spec.kind!r}")
    return faulty_image, faulty_desc


def _write_table_bits(
    memory: list[int],
    base_index: int,
    start_bit: int,
    nbits: int,
    value: int,
) -> None:
    """Overwrite the MSB-first bit range ``[start_bit, start_bit +
    nbits)`` of the word area starting at *memory[base_index]*."""
    for offset in range(nbits):
        bit = (value >> (nbits - 1 - offset)) & 1
        word_index, bit_index = divmod(start_bit + offset, 32)
        mask = 1 << (31 - bit_index)
        word = memory[base_index + word_index]
        memory[base_index + word_index] = (
            (word | mask) if bit else (word & ~mask)
        ) & 0xFFFFFFFF
