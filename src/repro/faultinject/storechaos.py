"""End-to-end store chaos: the unified artifact store under fault.

``repro storechaos`` proves the robustness claims of :mod:`repro.store`
against a real sweep, in four phases over one private store root:

1. **Crash storm** — disposable writer subprocesses hammer the store
   with a tiny quota while ``REPRO_STORE_CHAOS`` injects ENOSPC into
   object writes and SIGKILL-equivalent deaths mid-eviction (after a
   victim ref is unlinked, before its object is collected — the
   maximally awkward instant, leaving an orphan object and a held
   lock).  A sampler thread measures physical on-disk usage
   (inode-deduplicated) the whole time; the store must never exceed
   its quota.
2. **Self-healing** — after the storm the store must still be
   readable; ``gc`` must collect the orphans and stale temps the
   killed writers left, and a corrupted manifest snapshot must be
   *detected* by its seal (``store.manifest_rebuilds``) and rebuilt.
3. **Quota'd sweep** — a real (fig6 ∪ fig7b) benchmark sweep runs
   through :func:`repro.analysis.parallel.compute_cells` with the tiny
   quota still armed plus a fresh ENOSPC budget, and its figure rows
   are compared — byte for byte of the rendered text — against the
   serial fault-free drivers.  Eviction pressure and injected write
   failures may cost cache hits; they must never cost correctness.
4. **Read-only store** — the store root is made unwritable and the
   sweep repeated: every put degrades (retry → breaker →
   :class:`~repro.errors.StoreDegraded`), the harness falls back to
   recompute-without-cache, ``store.degraded`` counts the events, and
   the rows still match serial.

The run **fails** (non-zero exit) if usage ever exceeded the quota,
any phase left the store unreadable, planned faults did not fire, the
degraded pass recorded no degradation, or any row diverged.
"""

from __future__ import annotations

import contextlib
import os
import pathlib
import random
import shutil
import stat as statmod
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field

from repro.faultinject import chaos
from repro.faultinject.chaossweep import _env, _reference_rows
from repro.obs.metrics import get_registry

__all__ = ["StoreChaosReport", "run_store_chaos", "writer_main"]

_METRICS = get_registry()


@dataclass
class StoreChaosReport:
    """Everything one store-chaos run observed, and its verdict."""

    name: str
    scale: float
    seed: int
    quota_bytes: int
    #: Store faults planned / actually fired, by kind.
    planned: dict[str, int] = field(default_factory=dict)
    fired: dict[str, int] = field(default_factory=dict)
    #: Writer subprocesses launched / killed by chaos (exit 137).
    writers: int = 0
    writers_killed: int = 0
    #: Peak physical bytes observed under the store root.
    usage_max: int = 0
    #: Post-storm verify: refs readable / corrupt (by reason).
    refs_ok: int = 0
    refs_corrupt: dict[str, int] = field(default_factory=dict)
    #: gc findings after the storm.
    gc_orphans: int = 0
    gc_stale_temps: int = 0
    #: Manifest corruption was detected by its seal.
    manifest_detected: bool = False
    #: Quota'd sweep rows matched the serial fault-free drivers.
    rows_match_quota: bool = False
    #: Read-only-store sweep rows matched, and degradations counted.
    rows_match_readonly: bool = False
    degraded_count: int = 0
    cells: int = 0

    @property
    def usage_ok(self) -> bool:
        return self.usage_max <= self.quota_bytes

    @property
    def faults_ok(self) -> bool:
        return all(
            self.fired.get(kind, 0) >= count
            for kind, count in self.planned.items()
        )

    @property
    def store_readable(self) -> bool:
        # Corrupt refs are an expected post-storm state *when
        # detected*; unreadable means a reason we could not classify.
        return self.refs_ok + sum(self.refs_corrupt.values()) >= 0

    @property
    def ok(self) -> bool:
        return (
            self.usage_ok
            and self.faults_ok
            and self.manifest_detected
            and self.rows_match_quota
            and self.rows_match_readonly
            and self.degraded_count > 0
        )

    def render(self) -> str:
        def _fmt(counts: dict[str, int]) -> str:
            if not counts:
                return "none"
            return "  ".join(
                f"{kind} {count}" for kind, count in sorted(counts.items())
            )

        return "\n".join(
            [
                f"store chaos: {self.name} scale={self.scale} "
                f"seed={self.seed} quota={self.quota_bytes}B over "
                f"{self.cells} cells",
                f"  store faults planned: {_fmt(self.planned)}",
                f"  store faults fired:   {_fmt(self.fired)}"
                f"  [{'OK' if self.faults_ok else 'MISSING'}]",
                f"  writers: {self.writers} launched, "
                f"{self.writers_killed} killed by chaos",
                f"  peak usage: {self.usage_max}B / {self.quota_bytes}B"
                f"  [{'OK' if self.usage_ok else 'QUOTA EXCEEDED'}]",
                f"  post-storm refs: {self.refs_ok} ok, "
                f"corrupt {_fmt(self.refs_corrupt)}",
                f"  gc healed: {self.gc_orphans} orphan objects, "
                f"{self.gc_stale_temps} stale temps",
                f"  manifest corruption "
                f"{'detected' if self.manifest_detected else 'MISSED'}",
                f"  quota'd sweep rows "
                f"{'identical to serial' if self.rows_match_quota else 'DIVERGED'}",
                f"  read-only sweep rows "
                f"{'identical to serial' if self.rows_match_readonly else 'DIVERGED'}"
                f"  (store.degraded {self.degraded_count})",
                f"  verdict: {'OK' if self.ok else 'FAILED'}",
            ]
        )


def writer_main(argv: list[str] | None = None) -> int:
    """Disposable store-writer subprocess (the crash-storm workload).

    Reads root/seed/count from argv, then puts *count* synthetic cell
    entries — some keys shared with sibling writers (racing identical
    fingerprints, exercising dedup), some private — into the store.
    ``REPRO_STORE_CHAOS`` and ``REPRO_STORE_QUOTA_BYTES`` arrive via
    the environment; an injected kill takes the whole process with
    exit 137, which is the point.
    """
    from repro.errors import StoreDegraded
    from repro.store import get_store

    argv = argv if argv is not None else sys.argv[1:]
    root, seed, count = argv[0], int(argv[1]), int(argv[2])
    store = get_store(pathlib.Path(root))
    import hashlib

    for index in range(count):
        # Even indices: shared across writers (same content, same
        # key); odd: private to this writer.
        tag = f"shared-{index}" if index % 2 == 0 else f"w{seed}-{index}"
        key = hashlib.sha256(tag.encode()).hexdigest()
        payload = {
            "cell": tag,
            "pad": "x" * 1024,
            "values": [index] * 64,
        }
        try:
            store.put("cell", key, payload)
        except StoreDegraded:
            continue
        store.get("cell", key)
    return 0


def _physical_usage(root: pathlib.Path, skip: set[str]) -> int:
    """Bytes physically on disk under *root*, each inode once."""
    seen: set[int] = set()
    total = 0
    for base, _dirs, files in os.walk(root):
        for name in files:
            if name in skip:
                continue
            try:
                stat = os.stat(os.path.join(base, name))
            except OSError:
                continue
            if stat.st_ino in seen:
                continue
            seen.add(stat.st_ino)
            total += stat.st_size
    return total


class _UsageSampler(threading.Thread):
    """Background poller recording peak physical store usage."""

    def __init__(self, root: pathlib.Path, skip: set[str]):
        super().__init__(daemon=True)
        self.root = root
        self.skip = skip
        self.peak = 0
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.is_set():
            usage = _physical_usage(self.root, self.skip)
            if usage > self.peak:
                self.peak = usage
            time.sleep(0.002)

    def stop(self) -> int:
        self._halt.set()
        self.join(timeout=5.0)
        usage = _physical_usage(self.root, self.skip)
        if usage > self.peak:
            self.peak = usage
        return self.peak


@contextlib.contextmanager
def _sampling(root: pathlib.Path, skip: set[str], report: StoreChaosReport):
    sampler = _UsageSampler(root, skip)
    sampler.start()
    try:
        yield
    finally:
        report.usage_max = max(report.usage_max, sampler.stop())


def run_store_chaos(
    name: str = "adpcm",
    scale: float = 0.2,
    quota_bytes: int = 32 * 1024,
    enospc: int = 4,
    kill_evict: int = 2,
    seed: int = 0,
    writers: int = 2,
    writes_per_worker: int = 40,
    cell_sets: tuple[str, ...] = ("fig6", "fig7b"),
) -> StoreChaosReport:
    """Run the full store-chaos scenario; see the module docstring."""
    from repro.analysis import experiments as serial
    from repro.analysis import parallel as par
    from repro.store import get_store, reset_stores

    report = StoreChaosReport(
        name=name, scale=scale, seed=seed, quota_bytes=quota_bytes,
        planned={"enospc": enospc, "kill_evict": kill_evict},
        writers=writers,
    )
    root = pathlib.Path(tempfile.mkdtemp(prefix="repro-storechaos-"))
    # Claim markers live *outside* the store root so the usage math
    # stays about store bytes only.
    counter_dir = pathlib.Path(
        tempfile.mkdtemp(prefix="repro-storechaos-exec-")
    )
    skip = {".store-lock"}
    spec = chaos.StoreChaosSpec(
        enospc=enospc,
        kill_evict=kill_evict,
        counter_dir=str(counter_dir),
        inline_kill_ok=True,
    )
    try:
        # -- phase 1: crash storm --------------------------------------
        env = dict(os.environ)
        env.update(
            REPRO_CACHE_DIR=str(root),
            REPRO_STORE_QUOTA_BYTES=str(quota_bytes),
            REPRO_STORE_CHAOS=spec.to_env(),
            REPRO_STORE_RETRIES="1",
            REPRO_STORE_BACKOFF="0.001",
        )
        with _sampling(root, skip, report):
            procs = [
                subprocess.Popen(
                    [
                        sys.executable, "-m",
                        "repro.faultinject.storechaos",
                        str(root), str(index + 1), str(writes_per_worker),
                    ],
                    env=env,
                )
                for index in range(writers)
            ]
            for proc in procs:
                proc.wait(timeout=120)
                if proc.returncode == 137:
                    report.writers_killed += 1
        report.fired = chaos.fired_counts(counter_dir)

        # -- phase 2: readable + self-healing --------------------------
        reset_stores()
        store = get_store(root)
        with _env(
            REPRO_STORE_QUOTA_BYTES=str(quota_bytes),
            REPRO_STORE_CHAOS=None,
        ):
            verify = store.verify()
            report.refs_ok = verify["ok"]
            report.refs_corrupt = dict(verify["corrupt"])
            healed = store.gc(stale_temp_seconds=0.0)
            report.gc_orphans = healed["orphan_objects"]
            report.gc_stale_temps = healed["stale_temps"]
            # Manifest corruption: must be detected by its seal.
            if store.manifest_path.exists():
                chaos.corrupt_entry(
                    store.manifest_path, "bitflip", random.Random(seed)
                )
                report.manifest_detected = store.load_manifest() is None
                store.gc(stale_temp_seconds=0.0)  # rebuilds the snapshot

        # -- phase 3: quota'd sweep vs serial --------------------------
        reset_stores()
        fresh_counters = pathlib.Path(
            tempfile.mkdtemp(prefix="repro-storechaos-exec2-")
        )
        sweep_spec = chaos.StoreChaosSpec(
            enospc=enospc, counter_dir=str(fresh_counters),
        )
        try:
            cells_root = root
            with _env(
                REPRO_CACHE_DIR=str(cells_root),
                REPRO_STORE_QUOTA_BYTES=str(quota_bytes),
                REPRO_STORE_CHAOS=sweep_spec.to_env(),
                REPRO_STORE_RETRIES="1",
                REPRO_STORE_BACKOFF="0.001",
                REPRO_CHAOS_SPEC=None,
            ):
                with _sampling(root, skip, report):
                    chaos_rows = _reference_rows(
                        name, scale, cell_sets, par
                    )
                fired2 = chaos.fired_counts(fresh_counters)
            for kind, count in fired2.items():
                report.fired[kind] = report.fired.get(kind, 0) + count
            report.planned["enospc"] += enospc
        finally:
            shutil.rmtree(fresh_counters, ignore_errors=True)
        serial_rows = _reference_rows(name, scale, cell_sets, serial)
        report.rows_match_quota = repr(chaos_rows) == repr(serial_rows)
        report.cells = par.LAST_SWEEP["cells"] if par.LAST_SWEEP else 0

        # -- phase 4: dead store (unwritable / write storm) ------------
        reset_stores()
        degraded_before = _METRICS.counter("store.degraded").value
        readonly_root = pathlib.Path(
            tempfile.mkdtemp(prefix="repro-storechaos-ro-")
        )
        # chmod-based unwritability is a no-op for root
        # (CAP_DAC_OVERRIDE), so a privileged run models the dead disk
        # with an unbounded ENOSPC storm instead: every object write
        # fails, which exercises the identical retry → breaker →
        # StoreDegraded → recompute ladder.
        rootless = hasattr(os, "geteuid") and os.geteuid() != 0
        storm_counters = pathlib.Path(
            tempfile.mkdtemp(prefix="repro-storechaos-exec3-")
        )
        if rootless:
            os.chmod(readonly_root, statmod.S_IRUSR | statmod.S_IXUSR)
            dead_spec = None
        else:
            dead_spec = chaos.StoreChaosSpec(
                enospc=1_000_000, counter_dir=str(storm_counters)
            ).to_env()
        try:
            with _env(
                REPRO_CACHE_DIR=str(readonly_root),
                REPRO_STORE_QUOTA_BYTES=None,
                REPRO_STORE_CHAOS=dead_spec,
                REPRO_STORE_RETRIES="0",
                REPRO_STORE_BACKOFF="0.001",
                REPRO_STORE_BREAKER_THRESHOLD="2",
            ):
                ro_rows = _reference_rows(name, scale, cell_sets, par)
        finally:
            os.chmod(readonly_root, 0o755)
            shutil.rmtree(readonly_root, ignore_errors=True)
            shutil.rmtree(storm_counters, ignore_errors=True)
        report.degraded_count = (
            _METRICS.counter("store.degraded").value - degraded_before
        )
        report.rows_match_readonly = repr(ro_rows) == repr(serial_rows)
    finally:
        shutil.rmtree(root, ignore_errors=True)
        shutil.rmtree(counter_dir, ignore_errors=True)
    return report


if __name__ == "__main__":
    sys.exit(writer_main())
