"""Serve chaos: the squash-as-a-service stack under overload and murder.

``repro servechaos`` proves the robustness claims of
:mod:`repro.service` end to end, in four scenarios over private roots:

1. **Overload storm** — an engine with a tiny admission queue and
   dispatch frozen is flooded past capacity.  Every rejected
   submission must shed with a typed
   :class:`~repro.errors.ServiceOverloaded` carrying a positive
   retry-after hint; every *accepted* job must reach a terminal state
   once dispatch resumes, with an image digest byte-identical to a
   direct :func:`repro.api.squash_benchmark` call.  The storm also
   checks the deadline contract: a microscopic deadline expires with a
   typed :class:`~repro.errors.JobExpired`, and a generous one shows
   up tightened in the supervisor ``cell_deadline`` the job ran under.
2. **Tenant hog** — one tenant floods a single-worker engine, a
   second tenant submits afterwards; round-robin scheduling under the
   per-tenant cap must interleave the second tenant's jobs instead of
   starving them behind the hog's backlog.
3. **SIGKILL mid-job** — a real ``repro serve`` subprocess is
   SIGKILLed while a spooled job is running; a restarted server must
   recover the journal, finish every submitted job (none lost, none
   stuck), and produce digests identical to direct facade calls.
4. **Dead store** — the journal's store is put under an unbounded
   ENOSPC storm with retries off; journaling degrades (counted by
   ``service.journal_degraded``) but admission, execution, and results
   keep working — availability outlives the journal.

The run **fails** (non-zero exit) if a shed was untyped, an accepted
job was lost, a deadline was ignored, tenants starved, a SIGKILL lost
a job, or the dead-store pass either broke job execution or recorded
no degradation.
"""

from __future__ import annotations

import os
import pathlib
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field

from repro.errors import JobExpired, ServiceOverloaded
from repro.faultinject import chaos
from repro.faultinject.chaossweep import _env
from repro.obs.metrics import get_registry

__all__ = ["SCENARIOS", "ServeChaosReport", "run_serve_chaos"]

_METRICS = get_registry()

SCENARIOS = ("overload", "fairness", "sigkill", "deadstore")


@dataclass
class ServeChaosReport:
    """Everything one serve-chaos run observed, and its verdict."""

    scale: float
    seed: int
    scenarios: tuple[str, ...] = SCENARIOS
    #: Unexpected per-scenario exceptions (scenario -> message).
    errors: dict[str, str] = field(default_factory=dict)

    # overload storm
    storm_submitted: int = 0
    storm_accepted: int = 0
    storm_shed: int = 0
    storm_sheds_typed: bool = False
    storm_retry_after_min: float = 0.0
    storm_terminal: int = 0
    storm_digests_match: bool = False
    deadline_expired_typed: bool = False
    cell_deadline_propagated: bool = False

    # tenant hog
    hog_jobs: int = 0
    mouse_jobs: int = 0
    fairness_interleaved: bool = False

    # SIGKILL mid-job
    kill_jobs: int = 0
    kill_delivered: bool = False
    kill_recovered: int = 0
    kill_lost: int = 0
    kill_digests_match: bool = False

    # dead store
    deadstore_jobs: int = 0
    deadstore_completed: int = 0
    deadstore_degraded: int = 0

    @property
    def overload_ok(self) -> bool:
        return (
            self.storm_shed > 0
            and self.storm_sheds_typed
            and self.storm_retry_after_min > 0
            and self.storm_terminal == self.storm_accepted
            and self.storm_digests_match
            and self.deadline_expired_typed
            and self.cell_deadline_propagated
        )

    @property
    def fairness_ok(self) -> bool:
        return self.mouse_jobs > 0 and self.fairness_interleaved

    @property
    def sigkill_ok(self) -> bool:
        return (
            self.kill_delivered
            and self.kill_lost == 0
            and self.kill_digests_match
        )

    @property
    def deadstore_ok(self) -> bool:
        return (
            self.deadstore_completed == self.deadstore_jobs
            and self.deadstore_degraded > 0
        )

    @property
    def ok(self) -> bool:
        if self.errors:
            return False
        checks = {
            "overload": self.overload_ok,
            "fairness": self.fairness_ok,
            "sigkill": self.sigkill_ok,
            "deadstore": self.deadstore_ok,
        }
        return all(checks[name] for name in self.scenarios)

    def render(self) -> str:
        lines = [
            f"serve chaos: scale={self.scale} seed={self.seed} "
            f"scenarios={','.join(self.scenarios)}"
        ]
        if "overload" in self.scenarios:
            lines += [
                f"  overload: {self.storm_submitted} submitted, "
                f"{self.storm_accepted} accepted, {self.storm_shed} shed "
                f"({'typed' if self.storm_sheds_typed else 'UNTYPED'}, "
                f"retry-after >= {self.storm_retry_after_min:.3f}s)",
                f"    accepted terminal: {self.storm_terminal}"
                f"/{self.storm_accepted}, digests "
                f"{'identical to direct api' if self.storm_digests_match else 'DIVERGED'}",
                f"    deadline: tight one "
                f"{'expired typed' if self.deadline_expired_typed else 'NOT ENFORCED'}, "
                f"cell deadline "
                f"{'propagated' if self.cell_deadline_propagated else 'NOT PROPAGATED'}",
                f"    [{'OK' if self.overload_ok else 'FAILED'}]",
            ]
        if "fairness" in self.scenarios:
            lines.append(
                f"  fairness: hog {self.hog_jobs} jobs vs mouse "
                f"{self.mouse_jobs}; "
                f"{'interleaved' if self.fairness_interleaved else 'STARVED'}"
                f"  [{'OK' if self.fairness_ok else 'FAILED'}]"
            )
        if "sigkill" in self.scenarios:
            lines.append(
                f"  sigkill: {self.kill_jobs} jobs, server "
                f"{'killed mid-job' if self.kill_delivered else 'NOT KILLED'}, "
                f"{self.kill_recovered} recovered, {self.kill_lost} lost, "
                f"digests "
                f"{'identical' if self.kill_digests_match else 'DIVERGED'}"
                f"  [{'OK' if self.sigkill_ok else 'FAILED'}]"
            )
        if "deadstore" in self.scenarios:
            lines.append(
                f"  dead store: {self.deadstore_completed}"
                f"/{self.deadstore_jobs} jobs completed, "
                f"journal degradations {self.deadstore_degraded}"
                f"  [{'OK' if self.deadstore_ok else 'FAILED'}]"
            )
        for name, message in self.errors.items():
            lines.append(f"  {name}: ERROR {message}")
        lines.append(f"  verdict: {'OK' if self.ok else 'FAILED'}")
        return "\n".join(lines)


# -- helpers -----------------------------------------------------------------


def _direct_digest(name: str, theta: float, scale: float) -> str:
    """The byte-identity reference: what a direct facade call saves."""
    import repro.api as api
    from repro.service.jobs import _image_digest

    result = api.squash_benchmark(
        name, scale, api.SquashConfig(theta=theta)
    )
    return _image_digest(result)


def _squash_spec(theta: float, scale: float, *, name: str = "adpcm",
                 tenant: str = "default", priority: str = "batch",
                 deadline: float | None = None):
    from repro.service import JobSpec

    return JobSpec(
        kind="squash",
        payload={"name": name, "theta": theta, "scale": scale},
        tenant=tenant, priority=priority, deadline=deadline,
    )


def _resume_dispatch(engine) -> None:
    engine._dispatch_paused = False
    loop = engine._loop
    if loop is not None and engine._wake is not None:
        loop.call_soon_threadsafe(engine._wake.set)


# -- scenarios ---------------------------------------------------------------


def _run_overload(report: ServeChaosReport, root: pathlib.Path,
                  scale: float) -> None:
    from repro.service import JobEngine, JobJournal, ServiceConfig

    config = ServiceConfig(
        queue_depth=3, workers=2, tenant_cap=2, drain_timeout=30.0
    )
    engine = JobEngine(config, journal=JobJournal(root))
    engine._dispatch_paused = True
    engine.start(recover=False)
    try:
        accepted = []
        sheds = []
        retry_afters = []
        # Distinct thetas defeat result caching, so the storm jobs do
        # real work; depth+queue_depth submissions guarantee overflow.
        for index in range(config.queue_depth + 3):
            theta = 1e-4 * (index + 1)
            report.storm_submitted += 1
            try:
                job = engine.submit(_squash_spec(theta, scale))
                accepted.append((job.id, theta))
            except ServiceOverloaded as exc:
                sheds.append(exc)
                retry_afters.append(exc.retry_after)
        report.storm_accepted = len(accepted)
        report.storm_shed = len(sheds)
        report.storm_sheds_typed = bool(sheds) and all(
            exc.reason == "queue-full" for exc in sheds
        )
        report.storm_retry_after_min = min(retry_afters, default=0.0)
        _resume_dispatch(engine)
        matches = []
        for job_id, theta in accepted:
            result = engine.result(job_id, timeout=300.0)
            report.storm_terminal += 1
            matches.append(
                result["image_digest"]
                == _direct_digest("adpcm", theta, scale)
            )
        report.storm_digests_match = bool(matches) and all(matches)

        # Deadline contract, on the now-unloaded engine: a microscopic
        # deadline expires typed, a generous one tightens the
        # supervisor cell deadline the job's work observes.
        try:
            job = engine.submit(
                _squash_spec(2e-3, scale, deadline=0.0001)
            )
            engine.result(job.id, timeout=60.0)
        except JobExpired:
            report.deadline_expired_typed = True
        job = engine.submit(_squash_spec(3e-3, scale, deadline=30.0))
        result = engine.result(job.id, timeout=60.0)
        observed = result.get("cell_deadline")
        report.cell_deadline_propagated = (
            observed is not None and 0 < observed <= 30.0
        )
    finally:
        engine.stop(drain_timeout=1.0)


def _run_fairness(report: ServeChaosReport, root: pathlib.Path,
                  scale: float) -> None:
    from repro.service import JobEngine, JobJournal, ServiceConfig

    config = ServiceConfig(
        queue_depth=32, workers=1, tenant_cap=1, drain_timeout=30.0
    )
    engine = JobEngine(config, journal=JobJournal(root))
    engine._dispatch_paused = True
    engine.start(recover=False)
    try:
        hog = [
            engine.submit(
                _squash_spec(1e-3 * (index + 1), scale, tenant="hog")
            )
            for index in range(4)
        ]
        mouse = [
            engine.submit(
                _squash_spec(5e-4 * (index + 1), scale, tenant="mouse")
            )
            for index in range(2)
        ]
        report.hog_jobs = len(hog)
        report.mouse_jobs = len(mouse)
        _resume_dispatch(engine)
        for job in hog + mouse:
            engine.result(job.id, timeout=300.0)
        # Fair scheduling: the mouse's first job must finish before
        # the hog's backlog does — round-robin, not FIFO starvation.
        first_mouse = min(job.finished_at for job in mouse)
        last_hog = max(job.finished_at for job in hog)
        report.fairness_interleaved = first_mouse < last_hog
    finally:
        engine.stop(drain_timeout=1.0)


def _serve_argv(extra: list[str]) -> list[str]:
    return [sys.executable, "-m", "repro", "serve", *extra]


def _run_sigkill(report: ServeChaosReport, root: pathlib.Path,
                 scale: float) -> None:
    from repro.service import SpoolClient

    env = dict(os.environ)
    env.update(
        REPRO_CACHE_DIR=str(root),
        REPRO_SERVICE_WORKERS="1",
    )
    client = SpoolClient(root)
    thetas = [2e-4 * (index + 1) for index in range(3)]
    with _env(REPRO_CACHE_DIR=str(root)):
        job_ids = [
            client.submit(_squash_spec(theta, scale))
            for theta in thetas
        ]
    report.kill_jobs = len(job_ids)
    server = subprocess.Popen(
        _serve_argv([]), env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        # Kill the instant the journal shows a job mid-run; the
        # deadline below bounds a server that never gets there.
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if any(
                (client.journal.load(job_id) or {}).get("state")
                == "running"
                for job_id in job_ids
            ):
                server.send_signal(signal.SIGKILL)
                report.kill_delivered = True
                break
            if server.poll() is not None:
                break
            time.sleep(0.01)
        server.wait(timeout=30.0)
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30.0)

    # Restart: journal recovery plus the still-spooled requests must
    # finish every job; none lost, none stuck.
    server = subprocess.Popen(
        _serve_argv(["--idle-exit", "2.0"]), env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        matches = []
        for job_id, theta in zip(job_ids, thetas):
            try:
                record = client.wait(job_id, timeout=300.0)
            except (TimeoutError, ServiceOverloaded):
                report.kill_lost += 1
                continue
            if record.get("state") != "done":
                report.kill_lost += 1
                continue
            if record.get("recovered"):
                report.kill_recovered += 1
            matches.append(
                (record.get("result") or {}).get("image_digest")
                == _direct_digest("adpcm", theta, scale)
            )
        report.kill_digests_match = bool(matches) and all(matches)
        server.wait(timeout=120.0)
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30.0)


def _run_deadstore(report: ServeChaosReport, root: pathlib.Path,
                   scale: float) -> None:
    from repro.service import JobEngine, JobJournal, ServiceConfig
    from repro.store import reset_stores

    counters = pathlib.Path(
        tempfile.mkdtemp(prefix="repro-servechaos-exec-")
    )
    storm = chaos.StoreChaosSpec(
        enospc=1_000_000, counter_dir=str(counters)
    )
    degraded_before = _METRICS.counter("service.journal_degraded").value
    try:
        # Retries off and a hair-trigger breaker: every journal write
        # degrades immediately instead of burning backoff time.
        with _env(
            REPRO_CACHE_DIR=str(root),
            REPRO_STORE_CHAOS=storm.to_env(),
            REPRO_STORE_RETRIES="0",
            REPRO_STORE_BACKOFF="0.001",
            REPRO_STORE_BREAKER_THRESHOLD="2",
        ):
            reset_stores()
            config = ServiceConfig(
                queue_depth=8, workers=1, tenant_cap=1,
                drain_timeout=30.0,
            )
            engine = JobEngine(config, journal=JobJournal(root))
            engine.start(recover=False)
            try:
                thetas = [7e-4 * (index + 1) for index in range(2)]
                jobs = [
                    engine.submit(_squash_spec(theta, scale))
                    for theta in thetas
                ]
                report.deadstore_jobs = len(jobs)
                for job, theta in zip(jobs, thetas):
                    result = engine.result(job.id, timeout=300.0)
                    if result["image_digest"] == _direct_digest(
                        "adpcm", theta, scale
                    ):
                        report.deadstore_completed += 1
            finally:
                engine.stop(drain_timeout=1.0)
        reset_stores()
    finally:
        shutil.rmtree(counters, ignore_errors=True)
    report.deadstore_degraded = (
        _METRICS.counter("service.journal_degraded").value
        - degraded_before
    )


_RUNNERS = {
    "overload": _run_overload,
    "fairness": _run_fairness,
    "sigkill": _run_sigkill,
    "deadstore": _run_deadstore,
}


def run_serve_chaos(
    scale: float = 0.2,
    seed: int = 0,
    scenarios: tuple[str, ...] | list[str] | None = None,
) -> ServeChaosReport:
    """Run the serve-chaos scenarios; see the module docstring."""
    selected = tuple(scenarios) if scenarios else SCENARIOS
    unknown = [name for name in selected if name not in _RUNNERS]
    if unknown:
        raise ValueError(
            f"unknown serve-chaos scenario(s) {', '.join(unknown)} "
            f"(expected among {', '.join(SCENARIOS)})"
        )
    report = ServeChaosReport(scale=scale, seed=seed, scenarios=selected)
    for name in selected:
        root = pathlib.Path(
            tempfile.mkdtemp(prefix=f"repro-servechaos-{name}-")
        )
        try:
            _RUNNERS[name](report, root, scale)
        except Exception as exc:  # noqa: BLE001 - verdict, not crash
            report.errors[name] = f"{type(exc).__name__}: {exc}"
        finally:
            shutil.rmtree(root, ignore_errors=True)
    return report
