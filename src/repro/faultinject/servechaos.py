"""Serve chaos: the squash-as-a-service stack under overload and murder.

``repro servechaos`` proves the robustness claims of
:mod:`repro.service` end to end, in four scenarios over private roots:

1. **Overload storm** — an engine with a tiny admission queue and
   dispatch frozen is flooded past capacity.  Every rejected
   submission must shed with a typed
   :class:`~repro.errors.ServiceOverloaded` carrying a positive
   retry-after hint; every *accepted* job must reach a terminal state
   once dispatch resumes, with an image digest byte-identical to a
   direct :func:`repro.api.squash_benchmark` call.  The storm also
   checks the deadline contract: a microscopic deadline expires with a
   typed :class:`~repro.errors.JobExpired`, and a generous one shows
   up tightened in the supervisor ``cell_deadline`` the job ran under.
2. **Tenant hog** — one tenant floods a single-worker engine, a
   second tenant submits afterwards; round-robin scheduling under the
   per-tenant cap must interleave the second tenant's jobs instead of
   starving them behind the hog's backlog.
3. **SIGKILL mid-job** — a real ``repro serve`` subprocess is
   SIGKILLed while a spooled job is running; a restarted server must
   recover the journal, finish every submitted job (none lost, none
   stuck), and produce digests identical to direct facade calls.
4. **Dead store** — the journal's store is put under an unbounded
   ENOSPC storm with retries off; journaling degrades (counted by
   ``service.journal_degraded``) but admission, execution, and results
   keep working — availability outlives the journal.
5. **Tenant quota** — under a tiny ``REPRO_TENANT_QUOTA_BYTES`` a hog
   tenant floods until admission sheds it with a typed
   :class:`~repro.errors.TenantQuotaExceeded` (retry-after attached),
   while a mouse tenant's jobs complete and its journal records stay
   unevicted — one tenant's appetite never costs another's results.
6. **Fan-out** — a sweep is partitioned across two engines sharing
   one store (:mod:`repro.service.fanout`); the peer engine is
   SIGKILLed right after it claims a cell.  The survivor must reclaim
   the dead engine's cells after lease expiry and finish with rows
   byte-identical to a serial sweep — zero lost cells.

The *transport* parameter (``spool`` or ``http``) selects how the
overload and SIGKILL scenarios reach the service: in-process/spool, or
through the JSON HTTP front end (typed errors reconstructed from
status codes on the client side of the wire).

The run **fails** (non-zero exit) if a shed was untyped, an accepted
job was lost, a deadline was ignored, tenants starved, a SIGKILL lost
a job, the dead-store pass either broke job execution or recorded no
degradation, a hog tenant escaped its quota (or evicted the mouse), or
the fan-out sweep lost cells or diverged from serial rows.
"""

from __future__ import annotations

import os
import pathlib
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field

from repro.errors import (
    JobExpired,
    ServiceOverloaded,
    TenantQuotaExceeded,
)
from repro.faultinject import chaos
from repro.faultinject.chaossweep import _env
from repro.obs.metrics import get_registry

__all__ = ["SCENARIOS", "TRANSPORTS", "ServeChaosReport", "run_serve_chaos"]

_METRICS = get_registry()

SCENARIOS = (
    "overload", "fairness", "quota", "sigkill", "deadstore", "fanout",
)
TRANSPORTS = ("spool", "http")


@dataclass
class ServeChaosReport:
    """Everything one serve-chaos run observed, and its verdict."""

    scale: float
    seed: int
    scenarios: tuple[str, ...] = SCENARIOS
    #: How overload/sigkill reach the service: ``spool`` or ``http``.
    transport: str = "spool"
    #: Unexpected per-scenario exceptions (scenario -> message).
    errors: dict[str, str] = field(default_factory=dict)

    # overload storm
    storm_submitted: int = 0
    storm_accepted: int = 0
    storm_shed: int = 0
    storm_sheds_typed: bool = False
    storm_retry_after_min: float = 0.0
    storm_terminal: int = 0
    storm_digests_match: bool = False
    deadline_expired_typed: bool = False
    cell_deadline_propagated: bool = False

    # tenant hog
    hog_jobs: int = 0
    mouse_jobs: int = 0
    fairness_interleaved: bool = False

    # SIGKILL mid-job
    kill_jobs: int = 0
    kill_delivered: bool = False
    kill_recovered: int = 0
    kill_lost: int = 0
    kill_digests_match: bool = False

    # dead store
    deadstore_jobs: int = 0
    deadstore_completed: int = 0
    deadstore_degraded: int = 0

    # tenant quota
    quota_hog_submitted: int = 0
    quota_hog_sheds: int = 0
    quota_sheds_typed: bool = False
    quota_mouse_jobs: int = 0
    quota_mouse_done: int = 0
    quota_mouse_unevicted: bool = False

    # fan-out
    fanout_cells: int = 0
    fanout_kill_delivered: bool = False
    fanout_lost: int = -1
    fanout_rows_match: bool = False

    @property
    def overload_ok(self) -> bool:
        return (
            self.storm_shed > 0
            and self.storm_sheds_typed
            and self.storm_retry_after_min > 0
            and self.storm_terminal == self.storm_accepted
            and self.storm_digests_match
            and self.deadline_expired_typed
            and self.cell_deadline_propagated
        )

    @property
    def fairness_ok(self) -> bool:
        return self.mouse_jobs > 0 and self.fairness_interleaved

    @property
    def sigkill_ok(self) -> bool:
        return (
            self.kill_delivered
            and self.kill_lost == 0
            and self.kill_digests_match
        )

    @property
    def deadstore_ok(self) -> bool:
        return (
            self.deadstore_completed == self.deadstore_jobs
            and self.deadstore_degraded > 0
        )

    @property
    def quota_ok(self) -> bool:
        return (
            self.quota_hog_sheds > 0
            and self.quota_sheds_typed
            and self.quota_mouse_jobs > 0
            and self.quota_mouse_done == self.quota_mouse_jobs
            and self.quota_mouse_unevicted
        )

    @property
    def fanout_ok(self) -> bool:
        return (
            self.fanout_cells > 0
            and self.fanout_kill_delivered
            and self.fanout_lost == 0
            and self.fanout_rows_match
        )

    @property
    def ok(self) -> bool:
        if self.errors:
            return False
        checks = {
            "overload": self.overload_ok,
            "fairness": self.fairness_ok,
            "quota": self.quota_ok,
            "sigkill": self.sigkill_ok,
            "deadstore": self.deadstore_ok,
            "fanout": self.fanout_ok,
        }
        return all(checks[name] for name in self.scenarios)

    def render(self) -> str:
        lines = [
            f"serve chaos: scale={self.scale} seed={self.seed} "
            f"transport={self.transport} "
            f"scenarios={','.join(self.scenarios)}"
        ]
        if "overload" in self.scenarios:
            lines += [
                f"  overload: {self.storm_submitted} submitted, "
                f"{self.storm_accepted} accepted, {self.storm_shed} shed "
                f"({'typed' if self.storm_sheds_typed else 'UNTYPED'}, "
                f"retry-after >= {self.storm_retry_after_min:.3f}s)",
                f"    accepted terminal: {self.storm_terminal}"
                f"/{self.storm_accepted}, digests "
                f"{'identical to direct api' if self.storm_digests_match else 'DIVERGED'}",
                f"    deadline: tight one "
                f"{'expired typed' if self.deadline_expired_typed else 'NOT ENFORCED'}, "
                f"cell deadline "
                f"{'propagated' if self.cell_deadline_propagated else 'NOT PROPAGATED'}",
                f"    [{'OK' if self.overload_ok else 'FAILED'}]",
            ]
        if "fairness" in self.scenarios:
            lines.append(
                f"  fairness: hog {self.hog_jobs} jobs vs mouse "
                f"{self.mouse_jobs}; "
                f"{'interleaved' if self.fairness_interleaved else 'STARVED'}"
                f"  [{'OK' if self.fairness_ok else 'FAILED'}]"
            )
        if "sigkill" in self.scenarios:
            lines.append(
                f"  sigkill: {self.kill_jobs} jobs, server "
                f"{'killed mid-job' if self.kill_delivered else 'NOT KILLED'}, "
                f"{self.kill_recovered} recovered, {self.kill_lost} lost, "
                f"digests "
                f"{'identical' if self.kill_digests_match else 'DIVERGED'}"
                f"  [{'OK' if self.sigkill_ok else 'FAILED'}]"
            )
        if "quota" in self.scenarios:
            lines.append(
                f"  quota: hog {self.quota_hog_sheds}"
                f"/{self.quota_hog_submitted} shed "
                f"({'typed' if self.quota_sheds_typed else 'UNTYPED'}), "
                f"mouse {self.quota_mouse_done}/{self.quota_mouse_jobs} "
                f"done, records "
                f"{'unevicted' if self.quota_mouse_unevicted else 'EVICTED'}"
                f"  [{'OK' if self.quota_ok else 'FAILED'}]"
            )
        if "deadstore" in self.scenarios:
            lines.append(
                f"  dead store: {self.deadstore_completed}"
                f"/{self.deadstore_jobs} jobs completed, "
                f"journal degradations {self.deadstore_degraded}"
                f"  [{'OK' if self.deadstore_ok else 'FAILED'}]"
            )
        if "fanout" in self.scenarios:
            lost = "?" if self.fanout_lost < 0 else self.fanout_lost
            lines.append(
                f"  fanout: {self.fanout_cells} cells, peer "
                f"{'killed post-claim' if self.fanout_kill_delivered else 'NOT KILLED'}, "
                f"{lost} lost, rows "
                f"{'identical to serial' if self.fanout_rows_match else 'DIVERGED'}"
                f"  [{'OK' if self.fanout_ok else 'FAILED'}]"
            )
        for name, message in self.errors.items():
            lines.append(f"  {name}: ERROR {message}")
        lines.append(f"  verdict: {'OK' if self.ok else 'FAILED'}")
        return "\n".join(lines)


# -- helpers -----------------------------------------------------------------


def _direct_digest(name: str, theta: float, scale: float) -> str:
    """The byte-identity reference: what a direct facade call saves."""
    import repro.api as api
    from repro.service.jobs import _image_digest

    result = api.squash_benchmark(
        name, scale, api.SquashConfig(theta=theta)
    )
    return _image_digest(result)


def _squash_spec(theta: float, scale: float, *, name: str = "adpcm",
                 tenant: str = "default", priority: str = "batch",
                 deadline: float | None = None):
    from repro.service import JobSpec

    return JobSpec(
        kind="squash",
        payload={"name": name, "theta": theta, "scale": scale},
        tenant=tenant, priority=priority, deadline=deadline,
    )


def _resume_dispatch(engine) -> None:
    engine._dispatch_paused = False
    loop = engine._loop
    if loop is not None and engine._wake is not None:
        loop.call_soon_threadsafe(engine._wake.set)


# -- scenarios ---------------------------------------------------------------


def _run_overload(report: ServeChaosReport, root: pathlib.Path,
                  scale: float, transport: str = "spool") -> None:
    from repro.service import JobEngine, JobJournal, ServiceConfig

    config = ServiceConfig(
        queue_depth=3, workers=2, tenant_cap=2, drain_timeout=30.0
    )
    engine = JobEngine(config, journal=JobJournal(root))
    engine._dispatch_paused = True
    engine.start(recover=False)
    server = client = None
    if transport == "http":
        # Same engine, reached over the wire: sheds must come back as
        # 503s the client reconstructs into the same typed errors.
        from repro.service import ServiceClient, serve_http

        server = serve_http(engine, port=0)
        client = ServiceClient(server.url)

    def _submit(spec) -> str:
        if client is not None:
            return client.submit(spec).id
        return engine.submit(spec).id

    def _result(job_id: str, timeout: float) -> dict:
        if client is not None:
            return client.result(job_id, timeout=timeout)
        return engine.result(job_id, timeout=timeout)

    try:
        accepted = []
        sheds = []
        retry_afters = []
        # Distinct thetas defeat result caching, so the storm jobs do
        # real work; depth+queue_depth submissions guarantee overflow.
        for index in range(config.queue_depth + 3):
            theta = 1e-4 * (index + 1)
            report.storm_submitted += 1
            try:
                accepted.append((_submit(_squash_spec(theta, scale)),
                                 theta))
            except ServiceOverloaded as exc:
                sheds.append(exc)
                retry_afters.append(exc.retry_after)
        report.storm_accepted = len(accepted)
        report.storm_shed = len(sheds)
        report.storm_sheds_typed = bool(sheds) and all(
            exc.reason == "queue-full" for exc in sheds
        )
        report.storm_retry_after_min = min(retry_afters, default=0.0)
        _resume_dispatch(engine)
        matches = []
        for job_id, theta in accepted:
            result = _result(job_id, timeout=300.0)
            report.storm_terminal += 1
            matches.append(
                result["image_digest"]
                == _direct_digest("adpcm", theta, scale)
            )
        report.storm_digests_match = bool(matches) and all(matches)

        # Deadline contract, on the now-unloaded engine: a microscopic
        # deadline expires typed, a generous one tightens the
        # supervisor cell deadline the job's work observes.
        try:
            job_id = _submit(_squash_spec(2e-3, scale, deadline=0.0001))
            _result(job_id, timeout=60.0)
        except JobExpired:
            report.deadline_expired_typed = True
        job_id = _submit(_squash_spec(3e-3, scale, deadline=30.0))
        result = _result(job_id, timeout=60.0)
        observed = result.get("cell_deadline")
        report.cell_deadline_propagated = (
            observed is not None and 0 < observed <= 30.0
        )
    finally:
        if client is not None:
            client.close()
        if server is not None:
            server.stop()
        engine.stop(drain_timeout=1.0)


def _run_fairness(report: ServeChaosReport, root: pathlib.Path,
                  scale: float, transport: str = "spool") -> None:
    from repro.service import JobEngine, JobJournal, ServiceConfig

    config = ServiceConfig(
        queue_depth=32, workers=1, tenant_cap=1, drain_timeout=30.0
    )
    engine = JobEngine(config, journal=JobJournal(root))
    engine._dispatch_paused = True
    engine.start(recover=False)
    try:
        hog = [
            engine.submit(
                _squash_spec(1e-3 * (index + 1), scale, tenant="hog")
            )
            for index in range(4)
        ]
        mouse = [
            engine.submit(
                _squash_spec(5e-4 * (index + 1), scale, tenant="mouse")
            )
            for index in range(2)
        ]
        report.hog_jobs = len(hog)
        report.mouse_jobs = len(mouse)
        _resume_dispatch(engine)
        for job in hog + mouse:
            engine.result(job.id, timeout=300.0)
        # Fair scheduling: the mouse's first job must finish before
        # the hog's backlog does — round-robin, not FIFO starvation.
        first_mouse = min(job.finished_at for job in mouse)
        last_hog = max(job.finished_at for job in hog)
        report.fairness_interleaved = first_mouse < last_hog
    finally:
        engine.stop(drain_timeout=1.0)


def _serve_argv(extra: list[str]) -> list[str]:
    return [sys.executable, "-m", "repro", "serve", *extra]


def _free_port() -> int:
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _wait_http_up(url: str, timeout: float = 60.0) -> bool:
    import urllib.error
    import urllib.request

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url + "/v1/health",
                                        timeout=5.0) as resp:
                if resp.status == 200:
                    return True
        except (urllib.error.URLError, OSError):
            pass
        time.sleep(0.05)
    return False


def _run_sigkill(report: ServeChaosReport, root: pathlib.Path,
                 scale: float, transport: str = "spool") -> None:
    from repro.service import SpoolClient

    env = dict(os.environ)
    env.update(
        REPRO_CACHE_DIR=str(root),
        REPRO_SERVICE_WORKERS="1",
    )
    client = SpoolClient(root)
    thetas = [2e-4 * (index + 1) for index in range(3)]
    serve_extra: list[str] = []
    if transport == "http":
        # Submissions go over the wire into the serving process; the
        # kill then lands with HTTP-submitted jobs in flight.  Waiting
        # still reads the journal — the transport-independent truth a
        # murdered server cannot take down.
        port = _free_port()
        serve_extra = ["--http", f"127.0.0.1:{port}"]
        url = f"http://127.0.0.1:{port}"
        job_ids: list[str] = []
    else:
        with _env(REPRO_CACHE_DIR=str(root)):
            job_ids = [
                client.submit(_squash_spec(theta, scale))
                for theta in thetas
            ]
    server = subprocess.Popen(
        _serve_argv(serve_extra), env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    if transport == "http":
        from repro.service import ServiceClient

        if not _wait_http_up(url):
            raise RuntimeError(f"serve --http never answered at {url}")
        with _env(REPRO_CACHE_DIR=str(root)):
            with ServiceClient(url) as http_client:
                job_ids = [
                    http_client.submit(_squash_spec(theta, scale)).id
                    for theta in thetas
                ]
    report.kill_jobs = len(job_ids)
    try:
        # Kill the instant the journal shows a job mid-run; the
        # deadline below bounds a server that never gets there.
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if any(
                (client.journal.load(job_id) or {}).get("state")
                == "running"
                for job_id in job_ids
            ):
                server.send_signal(signal.SIGKILL)
                report.kill_delivered = True
                break
            if server.poll() is not None:
                break
            time.sleep(0.01)
        server.wait(timeout=30.0)
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30.0)

    # Restart: journal recovery plus the still-spooled requests must
    # finish every job; none lost, none stuck.
    server = subprocess.Popen(
        _serve_argv([*serve_extra, "--idle-exit", "2.0"]), env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        if transport == "http" and not _wait_http_up(url):
            raise RuntimeError(
                f"restarted serve --http never answered at {url}"
            )
        matches = []
        for job_id, theta in zip(job_ids, thetas):
            try:
                record = client.wait(job_id, timeout=300.0)
            except (TimeoutError, ServiceOverloaded):
                report.kill_lost += 1
                continue
            if record.get("state") != "done":
                report.kill_lost += 1
                continue
            if record.get("recovered"):
                report.kill_recovered += 1
            matches.append(
                (record.get("result") or {}).get("image_digest")
                == _direct_digest("adpcm", theta, scale)
            )
        report.kill_digests_match = bool(matches) and all(matches)
        server.wait(timeout=120.0)
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30.0)


def _run_deadstore(report: ServeChaosReport, root: pathlib.Path,
                   scale: float, transport: str = "spool") -> None:
    from repro.service import JobEngine, JobJournal, ServiceConfig
    from repro.store import reset_stores

    counters = pathlib.Path(
        tempfile.mkdtemp(prefix="repro-servechaos-exec-")
    )
    storm = chaos.StoreChaosSpec(
        enospc=1_000_000, counter_dir=str(counters)
    )
    degraded_before = _METRICS.counter("service.journal_degraded").value
    try:
        # Retries off and a hair-trigger breaker: every journal write
        # degrades immediately instead of burning backoff time.
        with _env(
            REPRO_CACHE_DIR=str(root),
            REPRO_STORE_CHAOS=storm.to_env(),
            REPRO_STORE_RETRIES="0",
            REPRO_STORE_BACKOFF="0.001",
            REPRO_STORE_BREAKER_THRESHOLD="2",
        ):
            reset_stores()
            config = ServiceConfig(
                queue_depth=8, workers=1, tenant_cap=1,
                drain_timeout=30.0,
            )
            engine = JobEngine(config, journal=JobJournal(root))
            engine.start(recover=False)
            try:
                thetas = [7e-4 * (index + 1) for index in range(2)]
                jobs = [
                    engine.submit(_squash_spec(theta, scale))
                    for theta in thetas
                ]
                report.deadstore_jobs = len(jobs)
                for job, theta in zip(jobs, thetas):
                    result = engine.result(job.id, timeout=300.0)
                    if result["image_digest"] == _direct_digest(
                        "adpcm", theta, scale
                    ):
                        report.deadstore_completed += 1
            finally:
                engine.stop(drain_timeout=1.0)
        reset_stores()
    finally:
        shutil.rmtree(counters, ignore_errors=True)
    report.deadstore_degraded = (
        _METRICS.counter("service.journal_degraded").value
        - degraded_before
    )


def _run_quota(report: ServeChaosReport, root: pathlib.Path,
               scale: float, transport: str = "spool") -> None:
    from repro.service import JobEngine, JobJournal, ServiceConfig
    from repro.store import get_store, reset_stores

    quota = 8 * 1024
    with _env(
        REPRO_CACHE_DIR=str(root),
        REPRO_TENANT_QUOTA_BYTES=str(quota),
    ):
        reset_stores()
        config = ServiceConfig(
            queue_depth=32, workers=1, tenant_cap=1,
            drain_timeout=30.0, tenant_quota_bytes=quota,
        )
        engine = JobEngine(config, journal=JobJournal(root))
        engine.start(recover=False)
        try:
            # The mouse goes first so its records are on disk when the
            # hog starts flooding — surviving the flood is the claim.
            mouse_ids = []
            for index in range(2):
                job = engine.submit(_squash_spec(
                    3e-4 * (index + 1), scale, tenant="mouse",
                ))
                engine.result(job.id, timeout=300.0)
                mouse_ids.append(job.id)
            report.quota_mouse_jobs = len(mouse_ids)

            sheds = []
            for index in range(24):
                report.quota_hog_submitted += 1
                try:
                    job = engine.submit(_squash_spec(
                        1e-4 * (index + 1), scale, tenant="hog",
                    ))
                    engine.result(job.id, timeout=300.0)
                except TenantQuotaExceeded as exc:
                    sheds.append(exc)
                    if len(sheds) >= 3:
                        break
            report.quota_hog_sheds = len(sheds)
            report.quota_sheds_typed = bool(sheds) and all(
                exc.tenant == "hog"
                and exc.reason == "tenant-quota"
                and exc.retry_after > 0
                for exc in sheds
            )

            # The mouse's working set must have survived the hog: its
            # journal records still load, its store refs still exist,
            # and a fresh mouse job still completes.
            journal = engine.journal
            records_alive = all(
                (journal.load(job_id) or {}).get("state") == "done"
                for job_id in mouse_ids
            )
            refs_alive = bool(get_store(root).tenant_refs("mouse"))
            job = engine.submit(_squash_spec(
                9e-4, scale, tenant="mouse",
            ))
            engine.result(job.id, timeout=300.0)
            report.quota_mouse_done = sum(
                1 for job_id in mouse_ids
                if (journal.load(job_id) or {}).get("state") == "done"
            )
            report.quota_mouse_unevicted = records_alive and refs_alive
        finally:
            engine.stop(drain_timeout=1.0)
    reset_stores()


def _run_fanout(report: ServeChaosReport, root: pathlib.Path,
                scale: float, transport: str = "spool") -> None:
    from repro.service import execute_job
    from repro.service.jobs import JobSpec
    from repro.store import get_store, reset_stores

    names = ["adpcm", "gsm"]
    thetas = [0.0, 1e-3]
    payload = {
        "names": names, "scale": scale, "thetas": thetas,
        "sweep_kind": "size",
    }
    # The reference rows come from a serial sweep in a *separate*
    # store root, so the fan-out run below computes its cells itself
    # rather than inheriting them from the reference's cache.
    serial_root = root / "serial"
    with _env(REPRO_CACHE_DIR=str(serial_root)):
        reset_stores()
        serial = execute_job(JobSpec(kind="sweep", payload=dict(payload)))

    env = dict(os.environ)
    env.update(
        REPRO_CACHE_DIR=str(root),
        REPRO_SERVICE_LEASE_SECONDS="3.0",
    )
    peer = subprocess.Popen(
        _serve_argv([]), env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        with _env(
            REPRO_CACHE_DIR=str(root),
            REPRO_SERVICE_LEASE_SECONDS="3.0",
        ):
            reset_stores()
            from repro.service import fanout

            store = get_store(root)
            plan = fanout.publish_plan(store, payload)
            report.fanout_cells = len(plan["names"])
            # Murder window: the instant the peer claims a cell it
            # dies, leaving a live-looking claim the survivor may only
            # take over after the lease expires.
            claims = root / "sweeps" / "claims" / plan["plan"]
            mine = fanout.engine_id()
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                foreign = [
                    path for path in (
                        list(claims.iterdir())
                        if claims.is_dir() else []
                    )
                    if _claim_engine(path) not in ("", mine)
                ]
                if foreign:
                    peer.send_signal(signal.SIGKILL)
                    report.fanout_kill_delivered = True
                    break
                if peer.poll() is not None:
                    break
                time.sleep(0.01)
            peer.wait(timeout=30.0)
            # The survivor (this process) must reclaim the dead
            # engine's cells and finish the sweep alone.
            result = fanout.run_fanout_sweep(
                dict(payload, fanout=True), plan=plan
            )
        reset_stores()
    finally:
        if peer.poll() is None:
            peer.kill()
            peer.wait(timeout=30.0)
    report.fanout_lost = report.fanout_cells - len(result["rows"]) // max(
        1, len(thetas)
    )
    report.fanout_rows_match = (
        result["rows"] == serial["rows"]
        and result["rows_digest"] == serial["rows_digest"]
    )


def _claim_engine(path: pathlib.Path) -> str:
    import json

    try:
        return json.loads(path.read_text()).get("engine", "")
    except (OSError, ValueError):
        return ""


_RUNNERS = {
    "overload": _run_overload,
    "fairness": _run_fairness,
    "quota": _run_quota,
    "sigkill": _run_sigkill,
    "deadstore": _run_deadstore,
    "fanout": _run_fanout,
}


def run_serve_chaos(
    scale: float = 0.2,
    seed: int = 0,
    scenarios: tuple[str, ...] | list[str] | None = None,
    transport: str = "spool",
) -> ServeChaosReport:
    """Run the serve-chaos scenarios; see the module docstring."""
    selected = tuple(scenarios) if scenarios else SCENARIOS
    unknown = [name for name in selected if name not in _RUNNERS]
    if unknown:
        raise ValueError(
            f"unknown serve-chaos scenario(s) {', '.join(unknown)} "
            f"(expected among {', '.join(SCENARIOS)})"
        )
    if transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r} "
            f"(expected {' or '.join(TRANSPORTS)})"
        )
    report = ServeChaosReport(
        scale=scale, seed=seed, scenarios=selected, transport=transport
    )
    for name in selected:
        root = pathlib.Path(
            tempfile.mkdtemp(prefix=f"repro-servechaos-{name}-")
        )
        try:
            _RUNNERS[name](report, root, scale, transport)
        except Exception as exc:  # noqa: BLE001 - verdict, not crash
            report.errors[name] = f"{type(exc).__name__}: {exc}"
        finally:
            shutil.rmtree(root, ignore_errors=True)
    return report
