"""The synthetic program generator.

Programs have the shape of the paper's embedded benchmarks: a hot
dispatch loop reading work items, a few hot kernels that account for
almost all execution, a ladder of rarely-executed handlers (peeled off
one by one as θ grows), never-executed feature handlers (error paths,
switches, indirect calls, recursion, longjmp), and bulk cold "filler"
features.  For `squeeze` to earn Table 1's Input→Squeeze reduction, the
generator also plants no-ops, dead stores, duplicated fragments
(carried in triplicated "carrier" functions) and unreachable functions,
in calibrated amounts.

Item encoding: ``item = kind + n_kinds * payload`` with
``payload < 2**20`` -- handlers use the payload bound to build
provably-never-taken error branches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.opcodes import AluOp, Op, REG_ZERO, SysOp
from repro.program.data import DataObject
from repro.program.program import Program
from repro.squeeze.pipeline import squeeze
from repro.workloads.builder import (
    A0,
    A1,
    BlockBuilder,
    FunctionBuilder,
    RA,
    V0,
)
from repro.workloads.spec import KindPlan, WorkloadSpec

#: Shared global state: slot 0 = accumulator, slot 1 = error count,
#: slots 2.. = scratch.
GLOBALS = "G"
GLOBALS_WORDS = 64
JMPBUF = "JB"
FPTAB = "FPTAB"
#: Payloads are below 2**20; error branches test against this bound.
PAYLOAD_BITS = 20
#: Register written by planted dead stores, never read by real code.
DEAD_REG = 8
#: Temps used by generated straight-line code.
_TEMPS = (1, 2, 3, 4, 5, 6)
#: Dup-carrier fragment length (matches a fingerprinted window size).
_DUP_LEN = 16
_DUP_COPIES = 3

_ALU_OPS = (
    AluOp.ADD,
    AluOp.SUB,
    AluOp.MUL,
    AluOp.XOR,
    AluOp.OR,
    AluOp.AND,
    AluOp.SLL,
    AluOp.SRL,
    AluOp.SRA,
    AluOp.CMPEQ,
    AluOp.CMPULT,
)


@dataclass
class GeneratedWorkload:
    """A generated program plus the facts inputs need."""

    spec: WorkloadSpec
    program: Program
    plan: KindPlan
    handler_of_kind: dict[int, str] = field(default_factory=dict)
    #: Number of kinds items are reduced modulo.
    n_kinds: int = 0


def _alu_run(
    bb: BlockBuilder,
    rng: random.Random,
    count: int,
    seed_reg: int,
) -> int:
    """Emit *count* chained ALU ops starting from *seed_reg*; returns
    the register holding the final value.  Every op feeds the next, so
    none is dead once the result is consumed."""
    prev = seed_reg
    out = prev
    for index in range(count):
        out = _TEMPS[index % len(_TEMPS)]
        op = rng.choice(_ALU_OPS)
        if rng.random() < 0.55:
            bb.ri(op, prev, rng.randrange(1, 256), out)
        else:
            other = _TEMPS[(index + 3) % len(_TEMPS)]
            if other == prev:
                other = _TEMPS[(index + 2) % len(_TEMPS)]
            bb.ri(AluOp.ADD, REG_ZERO, rng.randrange(1, 256), other)
            bb.rr(op, prev, other, out)
        prev = out
    return out


def _exact_alu_run(
    bb: BlockBuilder,
    rng: random.Random,
    count: int,
    seed_reg: int,
) -> int:
    """Like :func:`_alu_run` but emits exactly *count* instructions."""
    prev = seed_reg
    out = prev
    for index in range(count):
        out = _TEMPS[index % len(_TEMPS)]
        bb.ri(rng.choice(_ALU_OPS), prev, rng.randrange(1, 256), out)
        prev = out
    return out


def _store_result(
    bb: BlockBuilder, rng: random.Random, reg: int
) -> None:
    """Consume *reg* by folding it into a scratch global."""
    slot = rng.randrange(2, GLOBALS_WORDS)
    temp = 7
    bb.load_addr(temp, GLOBALS)
    bb.emit(Instruction(Op.LDW, ra=4 if reg != 4 else 5, rb=temp, imm=slot))
    other = 4 if reg != 4 else 5
    bb.rr(AluOp.XOR, reg, other, other)
    bb.emit(Instruction(Op.STW, ra=other, rb=temp, imm=slot))


class _HandlerWriter:
    """Stanza-level writer for one handler function."""

    def __init__(
        self,
        program: Program,
        name: str,
        rng: random.Random,
        frame: int = 2,
    ):
        self.program = program
        self.fb = FunctionBuilder(program, name)
        self.rng = rng
        self.frame = frame
        self._counter = 0
        self.current = self.fb.block("entry")
        self.current.push_frame(frame)
        self.current.store_stack(RA, 0)
        self.current.store_stack(A0, 1)

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def next_block(self, suffix: str | None = None) -> BlockBuilder:
        """Close the current block (falling through) and open another."""
        label_suffix = suffix or self._fresh("s")
        label = self.fb.label(label_suffix)
        if self.current.fallthrough is None and (
            self.current.branch_target is None
        ):
            self.current.fall(label)
        self.current = self.fb.block(label_suffix)
        return self.current

    # -- stanzas ---------------------------------------------------------

    def alu_stanza(self, count: int | None = None) -> None:
        count = count or self.rng.randrange(4, 10)
        self.current.load_stack(_TEMPS[0], 1)
        out = _alu_run(self.current, self.rng, count, _TEMPS[0])
        _store_result(self.current, self.rng, out)

    def diamond_stanza(self) -> None:
        """A conditional skip over a side computation."""
        rng = self.rng
        skip = self._fresh("d")
        side = self._fresh("e")
        self.current.load_stack(_TEMPS[0], 1)
        self.current.ri(
            AluOp.SRL, _TEMPS[0], rng.randrange(0, PAYLOAD_BITS), _TEMPS[1]
        )
        op = Op.BLBS if rng.random() < 0.5 else Op.BLBC
        self.current.emit(Instruction(op, ra=_TEMPS[1], imm=0))
        self.current.branch_target = self.fb.label(skip)
        self.current.fallthrough = self.fb.label(side)
        self.current = self.fb.block(side)
        out = _alu_run(self.current, rng, rng.randrange(3, 7), _TEMPS[1])
        _store_result(self.current, rng, out)
        self.current.fall(self.fb.label(skip))
        self.current = self.fb.block(skip)

    def call_stanza(self, callee: str, pass_payload: bool = True) -> None:
        if pass_payload:
            self.current.load_stack(A0, 1)
            self.current.ri(
                AluOp.XOR, A0, self.rng.randrange(1, 256), A0
            )
        self.current.call(callee)
        self.current.rr(AluOp.ADD, V0, REG_ZERO, _TEMPS[2])
        _store_result(self.current, self.rng, _TEMPS[2])

    def error_stanza(self, error_fn: str) -> None:
        """A provably-never-taken check guarding an error call."""
        err = self._fresh("err")
        cont = self._fresh("c")
        # r4 = 1 << PAYLOAD_BITS; payload < r4 always, so r4 <= payload
        # is always false.
        self.current.emit(
            Instruction(Op.LDAH, ra=4, rb=REG_ZERO, imm=1 << (PAYLOAD_BITS - 16))
        )
        self.current.load_stack(5, 1)
        self.current.rr(AluOp.CMPULE, 4, 5, 6)
        self.current.emit(Instruction(Op.BNE, ra=6, imm=0))
        self.current.branch_target = self.fb.label(err)
        self.current.fallthrough = self.fb.label(cont)
        error_block = self.fb.block(err)
        error_block.li(self.rng.randrange(0, 100), A0)
        error_block.call(error_fn)
        error_block.jump(self.fb.label(cont))
        self.current = self.fb.block(cont)

    def switch_stanza(
        self, n_cases: int, table_name: str, extent_known: bool = True
    ) -> None:
        cont = self._fresh("sw")
        case_labels = [self._fresh("case") for _ in range(n_cases)]
        self.current.load_stack(_TEMPS[0], 1)
        self.current.ri(AluOp.AND, _TEMPS[0], n_cases - 1, _TEMPS[0])
        self.current.table_jump(
            _TEMPS[0], _TEMPS[3], table_name, extent_known
        )
        table = DataObject(
            table_name,
            words=[0] * n_cases,
            relocs={
                index: self.fb.label(case_labels[index])
                for index in range(n_cases)
            },
            is_jump_table=True,
        )
        self.program.add_data(table)
        for case in case_labels:
            block = self.fb.block(case)
            out = _alu_run(block, self.rng, self.rng.randrange(2, 6), _TEMPS[0])
            _store_result(block, self.rng, out)
            block.jump(self.fb.label(cont))
        self.current = self.fb.block(cont)

    def fptr_stanza(self, n_targets: int) -> None:
        self.current.load_stack(_TEMPS[0], 1)
        self.current.ri(AluOp.AND, _TEMPS[0], n_targets - 1, _TEMPS[0])
        self.current.load_addr(_TEMPS[3], FPTAB)
        self.current.rr(AluOp.ADD, _TEMPS[3], _TEMPS[0], _TEMPS[3])
        self.current.emit(
            Instruction(Op.LDW, ra=_TEMPS[3], rb=_TEMPS[3], imm=0)
        )
        self.current.load_stack(A0, 1)
        self.current.call_indirect(_TEMPS[3])
        self.current.rr(AluOp.ADD, V0, REG_ZERO, _TEMPS[2])
        _store_result(self.current, self.rng, _TEMPS[2])

    def longjmp_stanza(self) -> None:
        lj = self._fresh("lj")
        cont = self._fresh("c")
        self.current.load_stack(_TEMPS[0], 1)
        self.current.ri(AluOp.AND, _TEMPS[0], 0xFF, _TEMPS[0])
        self.current.ri(AluOp.CMPEQ, _TEMPS[0], 0x5A, _TEMPS[1])
        self.current.emit(Instruction(Op.BNE, ra=_TEMPS[1], imm=0))
        self.current.branch_target = self.fb.label(lj)
        self.current.fallthrough = self.fb.label(cont)
        block = self.fb.block(lj)
        block.load_addr(A0, JMPBUF)
        block.ri(AluOp.ADD, REG_ZERO, 1, A1)
        block.syscall(SysOp.LONGJMP)
        self.current = self.fb.block(cont)

    def recursion_stanza(self, rec_fn: str) -> None:
        self.current.load_stack(A0, 1)
        self.current.ri(AluOp.AND, A0, 7, A0)
        self.current.call(rec_fn)
        self.current.rr(AluOp.ADD, V0, REG_ZERO, _TEMPS[2])
        _store_result(self.current, self.rng, _TEMPS[2])

    def finish(self) -> None:
        if not self.current.instrs:
            # keep the block non-empty (a diamond/error continuation may
            # be the last stanza); the store keeps liveness honest.
            self.current.load_stack(_TEMPS[0], 1)
            _store_result(self.current, self.rng, _TEMPS[0])
        epi = self.next_block("epi")
        epi.rr(AluOp.ADD, _TEMPS[1], REG_ZERO, V0)
        epi.load_stack(RA, 0)
        epi.pop_frame(self.frame)
        epi.ret()
        self.fb.seal()


def build_workload(
    spec: WorkloadSpec,
    filler_budget: int | None = None,
    calibrate: bool = True,
) -> GeneratedWorkload:
    """Generate the program for *spec*.

    When *calibrate* is true (and no explicit filler budget is given),
    the generator builds once with an estimate, measures the actual
    `squeeze` output, and rebuilds with a corrected filler budget so
    the squeezed size lands on the Table 1 target.
    """
    if filler_budget is not None or not calibrate:
        budget = filler_budget if filler_budget is not None else 0
        return _build_once(spec, budget)

    estimate = int(spec.target_squeeze_size * 0.9)
    workload = _build_once(spec, estimate)
    for _ in range(3):
        squeezed, _ = squeeze(workload.program)
        delta = spec.target_squeeze_size - squeezed.code_size
        if abs(delta) <= max(8, spec.target_squeeze_size // 500):
            break
        estimate += delta
        workload = _build_once(spec, max(0, estimate))
    return workload


def _build_once(spec: WorkloadSpec, filler_budget: int) -> GeneratedWorkload:
    rng = random.Random(spec.seed)
    plan = KindPlan.from_spec(spec)
    program = Program(spec.name)

    program.add_data(DataObject(GLOBALS, words=[0] * GLOBALS_WORDS))
    if spec.use_setjmp:
        program.add_data(DataObject(JMPBUF, words=[0] * 4))

    error_fn = _build_error_fn(program)
    utilities, leaf_utilities = _build_utilities(program, spec, rng)
    if spec.use_fptr:
        targets = rng.sample(
            leaf_utilities, k=min(4, len(leaf_utilities))
        )
        # power-of-two table for cheap masking
        while len(targets) not in (1, 2, 4):
            targets.pop()
        program.add_data(
            DataObject(
                FPTAB,
                words=[0] * len(targets),
                relocs={i: name for i, name in enumerate(targets)},
            )
        )
        program.address_taken.update(targets)
        n_fptr = len(targets)
    else:
        n_fptr = 0

    helpers = _build_helpers(program, spec, rng, utilities)
    hot = [
        _build_hot_kernel(program, index, rng)
        for index in range(spec.n_hot)
    ]

    rec_fn = _build_recursive(program, rng) if spec.use_recursion else None

    handler_of_kind: dict[int, str] = {}
    for position, kind in enumerate(plan.hot_kinds):
        handler_of_kind[kind] = hot[position]

    for position, kind in enumerate(plan.ladder_kinds):
        name = f"lad{position}"
        size = max(
            12,
            int(
                spec.ladder_size_fracs[position]
                * spec.target_squeeze_size
            ),
        )
        _build_cold_handler(
            program, name, rng, spec, error_fn, utilities, helpers,
            size_hint=size, features=(),
            rec_fn=rec_fn, n_fptr=n_fptr,
        )
        handler_of_kind[kind] = name

    for position, kind in enumerate(plan.timing_only_kinds):
        name = f"ton{position}"
        _build_cold_handler(
            program, name, rng, spec, error_fn, utilities, helpers,
            size_hint=rng.randrange(50, 90), features=(),
            rec_fn=rec_fn, n_fptr=n_fptr,
        )
        handler_of_kind[kind] = name

    feature_cycle = _feature_assignment(spec)
    menu_kind = plan.never_kinds[-1]
    for position, kind in enumerate(plan.never_kinds):
        if kind == menu_kind:
            handler_of_kind[kind] = "menu"
            continue
        name = f"nev{position}"
        _build_cold_handler(
            program, name, rng, spec, error_fn, utilities, helpers,
            size_hint=rng.randrange(70, 140),
            features=feature_cycle[position % len(feature_cycle)],
            rec_fn=rec_fn, n_fptr=n_fptr,
        )
        handler_of_kind[kind] = name

    _build_main(program, spec, plan, handler_of_kind, rng)
    program.entry = "main"

    # -- filler to hit the squeeze target ---------------------------------
    menu_callees: list[str] = []
    filler_left = max(0, filler_budget - program.code_size)
    index = 0
    while filler_left > 40:
        size = min(filler_left - 10, rng.randrange(90, 220))
        name = f"fill{index}"
        _build_cold_handler(
            program, name, rng, spec, error_fn, utilities, helpers,
            size_hint=size, features=(), rec_fn=rec_fn, n_fptr=n_fptr,
        )
        menu_callees.append(name)
        filler_left = filler_budget - program.code_size - 4 * len(
            menu_callees
        )
        index += 1

    # -- junk for squeeze to reclaim ----------------------------------------
    junk = max(0, spec.target_input_size - spec.target_squeeze_size)
    n_dup_groups = max(0, round(junk * spec.junk_dup / 28))
    n_nops = round(junk * spec.junk_nops)
    n_dead = round(junk * spec.junk_dead)

    if n_dup_groups:
        fragments = [
            _dup_fragment(rng) for _ in range(n_dup_groups)
        ]
        for copy in range(_DUP_COPIES):
            name = f"carrier{copy}"
            fb = FunctionBuilder(program, name)
            block = fb.block("entry")
            block.push_frame(4)
            for fragment in fragments:
                for instr in fragment:
                    block.emit(instr)
            block.pop_frame(4)
            block.li(0, V0)
            block.ret()
            fb.seal()
            menu_callees.append(name)

    junk_instrs = n_nops + n_dead
    junk_index = 0
    while junk_instrs > 0:
        chunk = min(junk_instrs, 180)
        name = f"junk{junk_index}"
        fb = FunctionBuilder(program, name)
        block = fb.block("entry")
        for _ in range(chunk):
            if n_nops > 0 and (n_dead == 0 or rng.random() < 0.5):
                block.nop()
                n_nops -= 1
            else:
                block.ri(
                    rng.choice(_ALU_OPS), A0, rng.randrange(1, 256), DEAD_REG
                )
                n_dead -= 1
        block.li(0, V0)
        block.ret()
        fb.seal()
        menu_callees.append(name)
        junk_instrs = n_nops + n_dead
        junk_index += 1

    _build_menu(program, menu_callees, rng)

    # -- unreachable functions: pad the input size exactly -----------------
    pad = spec.target_input_size - program.code_size
    unreach_index = 0
    while pad > 4:
        chunk = min(pad - 2, 240)
        name = f"unreach{unreach_index}"
        fb = FunctionBuilder(program, name)
        block = fb.block("entry")
        out = _exact_alu_run(block, rng, chunk - 2, A0)
        block.rr(AluOp.ADD, out, REG_ZERO, V0)
        block.ret()
        fb.seal()
        pad = spec.target_input_size - program.code_size
        unreach_index += 1

    program.validate()
    return GeneratedWorkload(
        spec=spec,
        program=program,
        plan=plan,
        handler_of_kind=handler_of_kind,
        n_kinds=plan.n_kinds,
    )


def _feature_assignment(spec: WorkloadSpec) -> list[tuple[str, ...]]:
    features: list[tuple[str, ...]] = []
    if spec.cold_jump_table:
        features.append(("switch",))
    if spec.unknown_table:
        features.append(("unknown_switch",))
    if spec.use_fptr:
        features.append(("fptr",))
    if spec.use_recursion:
        features.append(("recursion",))
    if spec.use_setjmp:
        features.append(("longjmp",))
    features.append(())
    return features


def _dup_fragment(rng: random.Random) -> list[Instruction]:
    """A 16-instruction position-independent fragment (duplicated in
    every carrier; procedural abstraction collapses the copies).

    The fragment ends in a stack-relative store so that liveness cannot
    kill it."""
    bb = BlockBuilder("tmp")
    out = _exact_alu_run(bb, rng, _DUP_LEN - 1, A0)
    bb.emit(Instruction(Op.STW, ra=out, rb=30, imm=rng.randrange(0, 4)))
    assert len(bb.instrs) == _DUP_LEN
    return bb.instrs


def _build_error_fn(program: Program) -> str:
    fb = FunctionBuilder(program, "error")
    block = fb.block("entry")
    block.syscall(SysOp.WRITE)
    block.li(99, A0)
    block.syscall(SysOp.EXIT)
    fb.seal()
    return "error"


def _build_utilities(
    program: Program, spec: WorkloadSpec, rng: random.Random
) -> tuple[list[str], list[str]]:
    """Shared utility functions; leaves are buffer-safe candidates."""
    names: list[str] = []
    leaves: list[str] = []
    n_leaf = max(1, round(spec.n_utilities * spec.leaf_utility_bias))
    for index in range(spec.n_utilities):
        name = f"util{index}"
        fb = FunctionBuilder(program, name)
        if index < n_leaf:
            block = fb.block("entry")
            out = _alu_run(block, rng, rng.randrange(4, 9), A0)
            block.rr(AluOp.ADD, out, REG_ZERO, V0)
            block.ret()
            leaves.append(name)
        else:
            block = fb.block("entry")
            block.push_frame(1)
            block.store_stack(RA, 0)
            out = _alu_run(block, rng, rng.randrange(2, 5), A0)
            block.rr(AluOp.ADD, out, REG_ZERO, A0)
            callee = rng.choice(leaves) if leaves else None
            if callee:
                block.call(callee)
            out = _alu_run(block, rng, 2, V0)
            block.rr(AluOp.ADD, out, REG_ZERO, V0)
            block.load_stack(RA, 0)
            block.pop_frame(1)
            block.ret()
        fb.seal()
        names.append(name)
    return names, leaves


def _build_helpers(
    program: Program,
    spec: WorkloadSpec,
    rng: random.Random,
    utilities: list[str],
) -> list[str]:
    """Cold mid-level helpers: handler -> helper -> utility call depth."""
    names = []
    for index in range(4):
        name = f"helper{index}"
        writer = _HandlerWriter(program, name, rng)
        writer.alu_stanza(rng.randrange(3, 7))
        writer.call_stanza(rng.choice(utilities))
        writer.alu_stanza(rng.randrange(3, 6))
        writer.finish()
        names.append(name)
    return names


def _build_hot_kernel(
    program: Program, index: int, rng: random.Random
) -> str:
    name = f"hot{index}"
    fb = FunctionBuilder(program, name)
    entry = fb.block("entry")
    entry.ri(AluOp.AND, A0, 15, 1)
    entry.ri(AluOp.ADD, 1, 1, 1)
    entry.load_addr(5, GLOBALS)
    entry.fall(fb.label("loop"))
    loop = fb.block("loop")
    slot = rng.randrange(2, 8)
    loop.emit(Instruction(Op.LDW, ra=2, rb=5, imm=slot))
    loop.ri(AluOp.MUL, 2, rng.randrange(3, 200) | 1, 2)
    loop.ri(AluOp.XOR, 2, rng.randrange(1, 256), 2)
    loop.ri(AluOp.ADD, 2, rng.randrange(1, 256), 2)
    loop.emit(Instruction(Op.STW, ra=2, rb=5, imm=slot))
    loop.ri(AluOp.SUB, 1, 1, 1)
    loop.branch(Op.BGT, 1, fb.label("loop"), fb.label("out"))
    out = fb.block("out")
    out.rr(AluOp.ADD, 2, REG_ZERO, V0)
    out.ret()
    fb.seal()
    return name


def _build_recursive(program: Program, rng: random.Random) -> str:
    name = "rec"
    fb = FunctionBuilder(program, name)
    entry = fb.block("entry")
    entry.branch(Op.BLE, A0, fb.label("base"), fb.label("body"))
    body = fb.block("body")
    body.push_frame(2)
    body.store_stack(RA, 0)
    body.store_stack(A0, 1)
    body.ri(AluOp.SUB, A0, 1, A0)
    body.call(name)
    body.load_stack(1, 1)
    body.rr(AluOp.ADD, V0, 1, V0)
    body.load_stack(RA, 0)
    body.pop_frame(2)
    body.ret()
    base = fb.block("base")
    base.li(1, V0)
    base.ret()
    fb.seal()
    return name


def _build_cold_handler(
    program: Program,
    name: str,
    rng: random.Random,
    spec: WorkloadSpec,
    error_fn: str,
    utilities: list[str],
    helpers: list[str],
    size_hint: int,
    features: tuple[str, ...],
    rec_fn: str | None,
    n_fptr: int,
) -> str:
    writer = _HandlerWriter(program, name, rng)
    for feature in features:
        if feature == "switch":
            writer.switch_stanza(
                rng.choice((4, 8)), f"{name}_jt", extent_known=True
            )
        elif feature == "unknown_switch":
            writer.switch_stanza(4, f"{name}_jt", extent_known=False)
        elif feature == "fptr" and n_fptr:
            writer.fptr_stanza(n_fptr)
        elif feature == "recursion" and rec_fn:
            writer.recursion_stanza(rec_fn)
        elif feature == "longjmp" and spec.use_setjmp:
            writer.longjmp_stanza()
    while writer.fb.size < size_hint:
        roll = rng.random()
        if roll < 0.45:
            writer.alu_stanza()
        elif roll < 0.65:
            writer.diamond_stanza()
        elif roll < 0.80:
            writer.call_stanza(rng.choice(utilities + helpers))
        elif roll < 0.92:
            writer.error_stanza(error_fn)
        else:
            writer.alu_stanza(rng.randrange(6, 12))
    writer.finish()
    return name


def _build_menu(
    program: Program, callees: list[str], rng: random.Random
) -> None:
    """The never-executed menu handler: dispatches its payload over
    every filler/carrier/junk function through a compare chain."""
    fb = FunctionBuilder(program, "menu")
    entry = fb.block("entry")
    entry.push_frame(2)
    entry.store_stack(RA, 0)
    entry.store_stack(A0, 1)
    next_label = fb.label("c0") if callees else fb.label("epi")
    entry.fall(next_label)
    for index, callee in enumerate(callees):
        block = fb.block(f"c{index}")
        selector_bits = max(1, (len(callees)).bit_length())
        block.load_stack(1, 1)
        block.ri(AluOp.SRL, 1, 4, 1)
        block.ri(
            AluOp.AND, 1, (1 << min(8, selector_bits)) - 1, 1
        )
        block.ri(AluOp.CMPEQ, 1, index & 0xFF, 2)
        call_label = fb.label(f"t{index}")
        next_label = (
            fb.label(f"c{index + 1}")
            if index + 1 < len(callees)
            else fb.label("epi")
        )
        block.branch(Op.BNE, 2, call_label, next_label)
        tramp = fb.block(f"t{index}")
        tramp.load_stack(A0, 1)
        tramp.call(callee)
        tramp.jump(fb.label("epi"))
    epi = fb.block("epi")
    epi.li(0, V0)
    epi.load_stack(RA, 0)
    epi.pop_frame(2)
    epi.ret()
    fb.seal()


def _build_main(
    program: Program,
    spec: WorkloadSpec,
    plan: KindPlan,
    handler_of_kind: dict[int, str],
    rng: random.Random,
) -> None:
    fb = FunctionBuilder(program, "main")
    entry = fb.block("entry")
    entry.li(0, 1)
    entry.stg(1, GLOBALS, 0, 2)
    entry.stg(1, GLOBALS, 1, 2)
    if spec.use_setjmp:
        entry.fall(fb.label("sj"))
        sj = fb.block("sj")
        sj.load_addr(A0, JMPBUF)
        sj.syscall(SysOp.SETJMP)
        sj.branch(Op.BNE, V0, fb.label("sjerr"), fb.label("loop"))
        sjerr = fb.block("sjerr")
        sjerr.ldg(1, GLOBALS, 1)
        sjerr.ri(AluOp.ADD, 1, 1, 1)
        sjerr.stg(1, GLOBALS, 1, 2)
        sjerr.jump(fb.label("loop"))
    else:
        entry.fall(fb.label("loop"))

    loop = fb.block("loop")
    loop.syscall(SysOp.READ)
    loop.branch(Op.BEQ, 1, fb.label("fini"), fb.label("kind"))

    kind = fb.block("kind")
    n_kinds = plan.n_kinds
    kind.ri(AluOp.UREM, V0, n_kinds, 2)   # r2 = kind
    kind.ri(AluOp.UDIV, V0, n_kinds, 3)   # r3 = payload

    jt_n = min(n_kinds, spec.n_hot + 2) if spec.use_jump_table else 0
    if jt_n >= 2:
        kind.ri(AluOp.CMPULT, 2, jt_n, 4)
        kind.branch(Op.BEQ, 4, fb.label("chain0"), fb.label("jt"))
        jt = fb.block("jt")
        jt.table_jump(2, 4, "main_jt")
        program.add_data(
            DataObject(
                "main_jt",
                words=[0] * jt_n,
                relocs={
                    index: fb.label(f"go{index}") for index in range(jt_n)
                },
                is_jump_table=True,
            )
        )
        chain_kinds = list(range(jt_n, n_kinds))
    else:
        kind.fall(fb.label("chain0"))
        chain_kinds = list(range(n_kinds))

    if not chain_kinds:
        fallback = fb.block("chain0")
        fallback.jump(fb.label("loop"))

    for position, item_kind in enumerate(chain_kinds):
        block = fb.block(f"chain{position}")
        block.ri(AluOp.CMPEQ, 2, item_kind, 4)
        next_label = (
            fb.label(f"chain{position + 1}")
            if position + 1 < len(chain_kinds)
            else fb.label("loop")
        )
        block.branch(Op.BNE, 4, fb.label(f"go{item_kind}"), next_label)

    for item_kind in range(n_kinds):
        tramp = fb.block(f"go{item_kind}")
        tramp.rr(AluOp.ADD, 3, REG_ZERO, A0)
        tramp.call(handler_of_kind[item_kind])
        tramp.jump(fb.label("loop"))

    # Final checksum: fold every global slot so any divergence anywhere
    # in the run shows up in the output.
    fini = fb.block("fini")
    fini.li(0, 1)               # r1 = index
    fini.li(0, 2)               # r2 = checksum
    fini.load_addr(5, GLOBALS)
    fini.fall(fb.label("ck"))
    ck = fb.block("ck")
    ck.rr(AluOp.ADD, 5, 1, 4)
    ck.emit(Instruction(Op.LDW, ra=3, rb=4, imm=0))
    ck.ri(AluOp.MUL, 2, 31, 2)
    ck.rr(AluOp.XOR, 2, 3, 2)
    ck.ri(AluOp.ADD, 1, 1, 1)
    ck.ri(AluOp.CMPULT, 1, GLOBALS_WORDS, 4)
    ck.branch(Op.BNE, 4, fb.label("ck"), fb.label("out"))
    out = fb.block("out")
    out.rr(AluOp.ADD, 2, REG_ZERO, A0)
    out.syscall(SysOp.WRITE)
    out.ldg(A0, GLOBALS, 1)
    out.syscall(SysOp.WRITE)
    out.li(0, A0)
    out.syscall(SysOp.EXIT)
    fb.seal()
