"""Low-level code-generation helpers for the workload generator."""

from __future__ import annotations

from repro.isa.instruction import Instruction, alu_ri, alu_rr
from repro.isa.opcodes import AluOp, Op, REG_RA, REG_ZERO, SysOp
from repro.program.blocks import BasicBlock, JumpTableInfo
from repro.program.function import Function
from repro.program.program import Program

#: Argument, value and temp registers used by generated code.
A0, A1 = 16, 17
V0 = 0
T = (1, 2, 3, 4, 5, 6, 7, 8)  # caller-save temps
SP = 30
RA = REG_RA


class BlockBuilder:
    """Accumulates instructions and metadata for one basic block."""

    def __init__(self, label: str):
        self.label = label
        self.instrs: list[Instruction] = []
        self.call_targets: dict[int, str] = {}
        self.data_refs: dict[int, str] = {}
        self.fallthrough: str | None = None
        self.branch_target: str | None = None
        self.jump_table: JumpTableInfo | None = None

    # -- emission ------------------------------------------------------------

    def emit(self, instr: Instruction) -> "BlockBuilder":
        self.instrs.append(instr)
        return self

    def ri(self, op: AluOp, ra: int, lit: int, rc: int) -> "BlockBuilder":
        return self.emit(alu_ri(op, ra, lit, rc))

    def rr(self, op: AluOp, ra: int, rb: int, rc: int) -> "BlockBuilder":
        return self.emit(alu_rr(op, ra, rb, rc))

    def li(self, value: int, rc: int) -> "BlockBuilder":
        """Load a small constant (0..255) into *rc*."""
        return self.ri(AluOp.ADD, REG_ZERO, value, rc)

    def load_addr(self, rc: int, symbol: str) -> "BlockBuilder":
        """Materialise a data symbol's address: ldah + lda with relocs."""
        self.data_refs[len(self.instrs)] = symbol
        self.emit(Instruction(Op.LDAH, ra=rc, rb=REG_ZERO, imm=0))
        self.data_refs[len(self.instrs)] = symbol
        self.emit(Instruction(Op.LDA, ra=rc, rb=rc, imm=0))
        return self

    def ldg(self, rc: int, symbol: str, offset: int = 0) -> "BlockBuilder":
        """Load the global word ``symbol[offset]`` into *rc*."""
        self.load_addr(rc, symbol)
        return self.emit(Instruction(Op.LDW, ra=rc, rb=rc, imm=offset))

    def stg(
        self, value_reg: int, symbol: str, offset: int, temp: int
    ) -> "BlockBuilder":
        """Store *value_reg* to ``symbol[offset]`` using *temp*."""
        self.load_addr(temp, symbol)
        return self.emit(
            Instruction(Op.STW, ra=value_reg, rb=temp, imm=offset)
        )

    def push_frame(self, nwords: int) -> "BlockBuilder":
        return self.ri(AluOp.SUB, SP, nwords, SP)

    def pop_frame(self, nwords: int) -> "BlockBuilder":
        return self.ri(AluOp.ADD, SP, nwords, SP)

    def store_stack(self, reg: int, offset: int) -> "BlockBuilder":
        return self.emit(Instruction(Op.STW, ra=reg, rb=SP, imm=offset))

    def load_stack(self, reg: int, offset: int) -> "BlockBuilder":
        return self.emit(Instruction(Op.LDW, ra=reg, rb=SP, imm=offset))

    def call(self, target: str, link: int = RA) -> "BlockBuilder":
        self.call_targets[len(self.instrs)] = target
        return self.emit(Instruction(Op.BSR, ra=link, imm=0))

    def call_indirect(self, target_reg: int, link: int = RA) -> "BlockBuilder":
        return self.emit(Instruction(Op.JSR, ra=link, rb=target_reg))

    def ret(self, link: int = RA) -> "BlockBuilder":
        return self.emit(Instruction(Op.RET, ra=REG_ZERO, rb=link))

    def syscall(self, op: SysOp) -> "BlockBuilder":
        return self.emit(Instruction(Op.SPC, imm=int(op)))

    def nop(self) -> "BlockBuilder":
        return self.emit(Instruction(Op.SPC, imm=int(SysOp.NOP)))

    # -- terminators ---------------------------------------------------------

    def branch(
        self, op: Op, reg: int, target: str, fallthrough: str
    ) -> "BlockBuilder":
        """Conditional branch terminator."""
        self.emit(Instruction(op, ra=reg, imm=0))
        self.branch_target = target
        self.fallthrough = fallthrough
        return self

    def jump(self, target: str) -> "BlockBuilder":
        """Unconditional branch terminator."""
        self.emit(Instruction(Op.BR, ra=REG_ZERO, imm=0))
        self.branch_target = target
        return self

    def fall(self, target: str) -> "BlockBuilder":
        """Plain fallthrough to *target*."""
        self.fallthrough = target
        return self

    def table_jump(
        self, selector: int, temp: int, table_symbol: str,
        extent_known: bool = True,
    ) -> "BlockBuilder":
        """The canonical jump-table dispatch idiom (see unswitch.py)."""
        self.load_addr(temp, table_symbol)
        self.rr(AluOp.ADD, temp, selector, temp)
        self.emit(Instruction(Op.LDW, ra=temp, rb=temp, imm=0))
        self.emit(Instruction(Op.JMP, ra=REG_ZERO, rb=temp))
        self.jump_table = JumpTableInfo(table_symbol, extent_known)
        return self

    def build(self) -> BasicBlock:
        return BasicBlock(
            label=self.label,
            instrs=self.instrs,
            fallthrough=self.fallthrough,
            branch_target=self.branch_target,
            call_targets=self.call_targets,
            data_refs=self.data_refs,
            jump_table=self.jump_table,
        )


class FunctionBuilder:
    """Builds a function block by block."""

    def __init__(self, program: Program, name: str):
        self.program = program
        self.name = name
        self.function = Function(name)
        program.add_function(self.function)
        self._pending: BlockBuilder | None = None

    def label(self, suffix: str) -> str:
        return f"{self.name}.{suffix}"

    def block(self, suffix: str) -> BlockBuilder:
        """Start a new block; the previous one is finalised."""
        self.seal()
        self._pending = BlockBuilder(self.label(suffix))
        return self._pending

    def seal(self) -> None:
        """Finalise the block under construction, if any."""
        if self._pending is not None:
            self.function.add_block(self._pending.build())
            self._pending = None

    @property
    def size(self) -> int:
        pending = self._pending.instrs if self._pending else []
        return self.function.size + len(pending)
