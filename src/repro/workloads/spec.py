"""Workload specifications and the item-kind plan."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one synthetic benchmark program.

    ``target_input_size`` / ``target_squeeze_size`` are the Table 1
    instruction counts the generated program is calibrated to (before
    and after `squeeze`).  Dynamic behaviour is controlled by the item
    counts and the ladder/boost parameters; see
    :mod:`repro.workloads.inputs`.
    """

    name: str
    seed: int
    target_input_size: int
    target_squeeze_size: int

    # -- static structure ------------------------------------------------
    n_hot: int = 3
    #: Rarely-executed kinds forming the execution-frequency ladder.
    n_ladder: int = 10
    #: Kinds absent from the profiling input but present in timing.
    n_timing_only: int = 2
    #: Never-executed feature handlers (plus filler handlers as needed).
    n_never: int = 6
    #: Fraction of utility functions that are leaves (raises the
    #: buffer-safe fraction; gsm/g721_enc use a higher value).
    leaf_utility_bias: float = 0.5
    n_utilities: int = 8
    use_jump_table: bool = True
    cold_jump_table: bool = True
    unknown_table: bool = False
    use_recursion: bool = True
    use_setjmp: bool = True
    use_fptr: bool = True

    # -- dynamic behaviour --------------------------------------------------
    profile_items: int = 20000
    timing_items: int = 30000
    #: Profile appearance counts of the ladder kinds (low to high); the
    #: counts are distinct so each rung is its own frequency class and θ
    #: peels them off one at a time.
    ladder_counts: tuple[int, ...] = (1, 2, 3, 4, 6, 8, 11, 16, 24, 32)
    #: Static size of each ladder handler, as a fraction of the squeeze
    #: target: together about 20% of the program is executed-but-rare,
    #: matching Figure 4's gap between θ=0 cold code (~73%) and θ=1
    #: (100%) less the hot core.
    ladder_size_fracs: tuple[float, ...] = (
        0.028, 0.030, 0.032, 0.020, 0.016,
        0.015, 0.015, 0.015, 0.015, 0.014,
    )
    #: Timing-input visit multiplier per ladder rung.  Low rungs are
    #: boosted hard: code just under a θ cutoff is exactly what gets
    #: decompressed repeatedly at run time (the paper's 4%/24% overheads
    #: at θ=1e-5/5e-5).
    ladder_boost: tuple[float, ...] = (2.5, 1.6, 1.4, 1.4, 1.3, 1.3, 1.3, 1.2, 1, 1)
    #: Timing appearances of each timing-only kind.
    timing_only_count: int = 2

    # -- junk planted for squeeze (fractions of input-squeeze gap) -------
    junk_nops: float = 0.20
    junk_dead: float = 0.15
    junk_dup: float = 0.15
    # remainder: unreachable functions

    def __post_init__(self) -> None:
        if self.target_squeeze_size >= self.target_input_size:
            raise ValueError("squeeze target must be below input target")
        if len(self.ladder_boost) != len(self.ladder_counts):
            raise ValueError("ladder_boost must match ladder_counts")
        if len(self.ladder_size_fracs) != len(self.ladder_counts):
            raise ValueError("ladder_size_fracs must match ladder_counts")
        if self.n_ladder > len(self.ladder_counts):
            raise ValueError("not enough ladder counts for n_ladder")


@dataclass(frozen=True)
class KindPlan:
    """How item kinds map to handlers."""

    n_hot: int
    n_ladder: int
    n_timing_only: int
    n_never: int

    @property
    def n_kinds(self) -> int:
        return self.n_hot + self.n_ladder + self.n_timing_only + self.n_never

    @property
    def hot_kinds(self) -> range:
        return range(0, self.n_hot)

    @property
    def ladder_kinds(self) -> range:
        return range(self.n_hot, self.n_hot + self.n_ladder)

    @property
    def timing_only_kinds(self) -> range:
        start = self.n_hot + self.n_ladder
        return range(start, start + self.n_timing_only)

    @property
    def never_kinds(self) -> range:
        start = self.n_hot + self.n_ladder + self.n_timing_only
        return range(start, start + self.n_never)

    @classmethod
    def from_spec(cls, spec: WorkloadSpec) -> "KindPlan":
        return cls(
            n_hot=spec.n_hot,
            n_ladder=spec.n_ladder,
            n_timing_only=spec.n_timing_only,
            n_never=spec.n_never,
        )
