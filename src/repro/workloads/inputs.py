"""Profiling and timing inputs (the paper's Figure 5 distinction).

An input is a stream of work items.  ``item = kind + n_kinds * payload``
with a 20-bit payload.  The profiling input exercises the hot kinds
plus the execution-frequency ladder with *exact* per-kind counts (so
the θ sweep has deterministic frequency classes to peel off); the
timing input is larger, boosts the ladder (especially its middle
rungs -- code just under a θ cutoff is what gets decompressed at run
time) and touches a few kinds the profile never saw, mirroring how the
paper's timing inputs exercise profile-cold paths.
"""

from __future__ import annotations

import random

from repro.workloads.generator import GeneratedWorkload, PAYLOAD_BITS
from repro.workloads.spec import WorkloadSpec

_PAYLOAD_MAX = 1 << PAYLOAD_BITS


def _item(kind: int, payload: int, n_kinds: int) -> int:
    return kind + n_kinds * payload


def _hot_shares(n_hot: int, rng: random.Random) -> list[float]:
    raw = [rng.uniform(0.5, 2.0) for _ in range(n_hot)]
    total = sum(raw)
    return [value / total for value in raw]


def make_input(
    workload: GeneratedWorkload,
    mode: str,
    seed_offset: int = 0,
) -> list[int]:
    """Build the ``mode`` ('profile' or 'timing') input stream."""
    if mode not in ("profile", "timing"):
        raise ValueError(f"unknown input mode {mode!r}")
    spec = workload.spec
    plan = workload.plan
    rng = random.Random((spec.seed << 3) ^ 0xBEEF ^ seed_offset)
    n_kinds = workload.n_kinds

    total_items = (
        spec.profile_items if mode == "profile" else spec.timing_items
    )
    items: list[int] = []

    # Ladder kinds: exact counts.
    for position, kind in enumerate(plan.ladder_kinds):
        count = spec.ladder_counts[position]
        if mode == "timing":
            count = max(1, round(count * spec.ladder_boost[position]))
        for _ in range(count):
            items.append(
                _item(kind, rng.randrange(_PAYLOAD_MAX), n_kinds)
            )

    # Timing-only kinds.
    if mode == "timing":
        for kind in plan.timing_only_kinds:
            for _ in range(spec.timing_only_count):
                items.append(
                    _item(kind, rng.randrange(_PAYLOAD_MAX), n_kinds)
                )

    # Hot kinds fill the rest.
    shares = _hot_shares(spec.n_hot, random.Random(spec.seed ^ 0x51DE))
    hot_items = max(0, total_items - len(items))
    for position, kind in enumerate(plan.hot_kinds):
        count = int(hot_items * shares[position])
        for _ in range(count):
            items.append(
                _item(kind, rng.randrange(_PAYLOAD_MAX), n_kinds)
            )

    rng.shuffle(items)
    return items


def profiling_input(workload: GeneratedWorkload) -> list[int]:
    """The input used to collect the guiding profile."""
    return make_input(workload, "profile")


def timing_input(workload: GeneratedWorkload) -> list[int]:
    """The (larger, diverging) input used for execution-time runs."""
    return make_input(workload, "timing", seed_offset=1)
