"""Synthetic MediaBench-like workloads.

The paper evaluates on eleven MediaBench embedded applications compiled
for Alpha/Tru64 -- a toolchain we cannot run.  This package generates
*executable* programs in our ISA with the same structural properties
the experiments depend on: static sizes matching Table 1, an 80/20
hot/cold execution split, a ladder of rarely-executed code that the θ
sweep peels off gradually, never-executed error paths, planted
unreachable/dead/duplicated code for `squeeze` to reclaim, jump tables,
indirect calls, recursion, and setjmp/longjmp.  Profiling and timing
inputs differ the way the paper's do (Figure 5): the timing input is
larger and exercises some code the profile never touched.
"""

from repro.workloads.spec import WorkloadSpec
from repro.workloads.generator import build_workload, GeneratedWorkload
from repro.workloads.inputs import make_input
from repro.workloads.mediabench import (
    MEDIABENCH,
    mediabench_spec,
    mediabench_program,
)

__all__ = [
    "WorkloadSpec",
    "build_workload",
    "GeneratedWorkload",
    "make_input",
    "MEDIABENCH",
    "mediabench_spec",
    "mediabench_program",
]
