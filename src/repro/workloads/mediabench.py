"""The eleven MediaBench-like benchmark specs (Table 1 of the paper).

Static size targets are the paper's instruction counts.  Structural
parameters vary per benchmark the way the paper's programs do: *gsm*
and *g721_enc* get the highest fraction of leaf utilities (the paper
reports them with the most buffer-safe regions, 20% and 19%), *pgp*
gets the largest never-executed share (it shows the best compression),
and *adpcm* is the small program where fixed overheads bite hardest.

Programs are generated deterministically from seeds and cached in
memory; ``mediabench_program`` also returns the squeezed program and
its layout, since every experiment starts there.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache

from repro.program.layout import LayoutResult, layout
from repro.program.program import Program
from repro.squeeze.pipeline import SqueezeStats, squeeze
from repro.vm.profiler import Profile, collect_profile
from repro.workloads.generator import GeneratedWorkload, build_workload
from repro.workloads.inputs import profiling_input, timing_input
from repro.workloads.spec import WorkloadSpec

#: (input size, squeeze size) from Table 1.
_TABLE1 = {
    "adpcm": (18228, 11690),
    "epic": (33880, 24769),
    "g721_dec": (15089, 12008),
    "g721_enc": (15065, 11771),
    "gsm": (29789, 21597),
    "jpeg_dec": (44094, 37042),
    "jpeg_enc": (38701, 32168),
    "mpeg2dec": (37833, 27942),
    "mpeg2enc": (47152, 36062),
    "pgp": (83726, 60003),
    "rasta": (91359, 65273),
}

#: Benchmark names in the paper's order.
MEDIABENCH = tuple(_TABLE1)

#: Per-benchmark structural tweaks.
_TWEAKS: dict[str, dict] = {
    "adpcm": {"n_utilities": 6, "profile_items": 5000},
    "epic": {"unknown_table": True},
    "g721_dec": {"leaf_utility_bias": 0.6},
    "g721_enc": {"leaf_utility_bias": 0.8, "n_utilities": 10},
    "gsm": {"leaf_utility_bias": 0.85, "n_utilities": 12},
    "jpeg_dec": {"n_never": 8},
    "jpeg_enc": {"n_never": 7},
    "mpeg2dec": {"n_never": 8, "unknown_table": True},
    "mpeg2enc": {"n_never": 9},
    "pgp": {"n_never": 10, "n_utilities": 10},
    "rasta": {"n_never": 10},
}


def mediabench_spec(name: str, scale: float = 1.0) -> WorkloadSpec:
    """The spec for benchmark *name*.

    ``scale`` shrinks the static/dynamic targets proportionally (tests
    use small scales; experiments use 1.0).
    """
    if name not in _TABLE1:
        raise KeyError(f"unknown benchmark {name!r}; see MEDIABENCH")
    input_size, squeeze_size = _TABLE1[name]
    seed = 0xC0DE + sum(ord(c) * 131 for c in name)
    spec = WorkloadSpec(
        name=name,
        seed=seed,
        target_input_size=max(600, int(input_size * scale)),
        target_squeeze_size=max(400, int(squeeze_size * scale)),
        **_TWEAKS.get(name, {}),
    )
    if scale < 1.0:
        spec = replace(
            spec,
            profile_items=max(400, int(spec.profile_items * scale)),
            timing_items=max(600, int(spec.timing_items * scale)),
        )
    return spec


@dataclass
class MediabenchProgram:
    """Everything the experiments need for one benchmark."""

    name: str
    workload: GeneratedWorkload
    squeezed: Program
    squeeze_stats: SqueezeStats
    layout: LayoutResult
    profile: Profile
    profile_input: list[int]
    timing_input: list[int]

    @property
    def input_size(self) -> int:
        return self.workload.program.code_size

    @property
    def squeeze_size(self) -> int:
        return self.squeezed.code_size


@lru_cache(maxsize=None)
def mediabench_program(name: str, scale: float = 1.0) -> MediabenchProgram:
    """Generate, squeeze, lay out, and profile benchmark *name*.

    Results are cached per (name, scale) for the life of the process.
    """
    spec = mediabench_spec(name, scale=scale)
    workload = build_workload(spec)
    squeezed, stats = squeeze(workload.program)
    result = layout(squeezed)
    profile_in = profiling_input(workload)
    timing_in = timing_input(workload)
    profile = collect_profile(squeezed, result.image, profile_in)
    return MediabenchProgram(
        name=name,
        workload=workload,
        squeezed=squeezed,
        squeeze_stats=stats,
        layout=result,
        profile=profile,
        profile_input=profile_in,
        timing_input=timing_in,
    )
