"""Unswitching indirect jumps in cold code (Section 6.2 of the paper).

A compressed region cannot contain an indirect jump through a jump
table: the table's addresses would point at the original code, not at
the runtime buffer.  Squash either updates the table or "unswitches"
the jump into a chain of conditional branches; like the paper's
implementation, we unswitch, after which the jump table's space is
reclaimed.  If the extent of a jump table cannot be determined (a real
hazard for a binary rewriter, modelled by ``JumpTableInfo.extent_known``),
the jump block and every possible target are excluded from compression.

The recogniser matches the canonical table-dispatch idiom::

    ldah rT, hi(table)(r31)
    lda  rT, lo(table)(rT)
    add  rT, rS, rT          ; rS = case index
    ldw  rT, 0(rT)
    jmp  (rT)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.opcodes import AluOp, Op, REG_ZERO
from repro.program.blocks import BasicBlock
from repro.program.program import Program
from repro.vm.profiler import Profile

#: Largest table that unswitching will expand (each case needs its
#: index as an 8-bit literal).
MAX_UNSWITCH_CASES = 64


@dataclass
class UnswitchResult:
    """What happened to cold jump-table blocks."""

    unswitched_blocks: int = 0
    new_blocks: list[str] = field(default_factory=list)
    reclaimed_words: int = 0
    #: Blocks excluded from compression (unknown-extent tables).
    excluded: set[str] = field(default_factory=set)


def _match_dispatch(block: BasicBlock) -> tuple[int, int] | None:
    """Return (rT, rS) if the block ends in the canonical idiom."""
    if len(block.instrs) < 5:
        return None
    ldah, lda, add, ldw, jmp = block.instrs[-5:]
    base = len(block.instrs) - 5
    if jmp.op is not Op.JMP:
        return None
    rt = jmp.rb
    if ldw.op is not Op.LDW or ldw.ra != rt or ldw.rb != rt or ldw.imm != 0:
        return None
    if add.op is not Op.OPR or add.func != AluOp.ADD or add.rc != rt:
        return None
    if rt not in (add.ra, add.rb):
        return None
    rs = add.rb if add.ra == rt else add.ra
    if rs == rt:
        return None  # selector must be distinct from the table pointer
    if lda.op is not Op.LDA or lda.ra != rt or lda.rb != rt:
        return None
    if ldah.op is not Op.LDAH or ldah.ra != rt or ldah.rb != REG_ZERO:
        return None
    if base not in block.data_refs or (base + 1) not in block.data_refs:
        return None
    return rt, rs


def unswitch_cold_tables(
    program: Program,
    cold: set[str],
    profile: Profile,
) -> UnswitchResult:
    """Unswitch cold jump-table blocks in place; update *cold* and
    *profile* with the new chain blocks."""
    result = UnswitchResult()
    for function in program.functions.values():
        for label in list(function.blocks):
            block = function.blocks[label]
            if block.jump_table is None or label not in cold:
                continue
            table_obj = program.data[block.jump_table.data_symbol]
            targets = [
                table_obj.relocs[i] for i in sorted(table_obj.relocs)
            ]
            match = _match_dispatch(block)
            if (
                not block.jump_table.extent_known
                or match is None
                or len(targets) > MAX_UNSWITCH_CASES
                or len(targets) == 0
            ):
                result.excluded.add(label)
                result.excluded.update(targets)
                continue
            rt, rs = match
            _unswitch_block(
                program, function.name, block, targets, rt, rs,
                cold, profile, result,
            )

    # Reclaim tables no longer referenced by any block.
    used = {
        b.jump_table.data_symbol
        for _, b in program.all_blocks()
        if b.jump_table is not None
    }
    for name in list(program.data):
        obj = program.data[name]
        if obj.is_jump_table and name not in used:
            result.reclaimed_words += obj.size
            del program.data[name]
    return result


def _unswitch_block(
    program: Program,
    function_name: str,
    block: BasicBlock,
    targets: list[str],
    rt: int,
    rs: int,
    cold: set[str],
    profile: Profile,
    result: UnswitchResult,
) -> None:
    """Replace the dispatch idiom with a conditional-branch chain.

    The selector index is scaled by the case number directly: case k
    tests ``rS == k`` (rS held a word offset in the table idiom, but
    the generator indexes by words, so case k's offset is k).
    """
    function = program.functions[function_name]
    freq = profile.freq(block.label)

    # The selector register held a word index; keep its value live.
    block.instrs = block.instrs[:-5]
    block.data_refs = {
        i: s for i, s in block.data_refs.items() if i < len(block.instrs)
    }
    block.jump_table = None

    chain_labels = [
        f"{block.label}.usw{k}" for k in range(len(targets) - 1)
    ]
    final_label = f"{block.label}.uswend"

    first = chain_labels[0] if chain_labels else final_label
    block.fallthrough = first
    block.branch_target = None
    if not block.instrs:
        # keep the block non-empty so the IR stays valid
        from repro.isa.instruction import nop

        block.instrs = [nop()]

    for k, chain_label in enumerate(chain_labels):
        next_label = (
            chain_labels[k + 1] if k + 1 < len(chain_labels) else final_label
        )
        test = BasicBlock(
            chain_label,
            instrs=[
                Instruction(Op.OPI, ra=rs, rc=rt, func=int(AluOp.CMPEQ), imm=k),
                Instruction(Op.BNE, ra=rt, imm=0),
            ],
            fallthrough=next_label,
            branch_target=targets[k],
        )
        function.add_block(test)
        result.new_blocks.append(chain_label)
        profile.counts[chain_label] = freq
        profile.sizes[chain_label] = test.size
        cold.add(chain_label)

    final = BasicBlock(
        final_label,
        instrs=[Instruction(Op.BR, ra=REG_ZERO, imm=0)],
        branch_target=targets[-1],
    )
    function.add_block(final)
    result.new_blocks.append(final_label)
    profile.counts[final_label] = freq
    profile.sizes[final_label] = final.size
    cold.add(final_label)
    result.unswitched_blocks += 1
