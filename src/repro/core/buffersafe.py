"""Buffer-safe function analysis (Section 6.1 of the paper).

A callee is *buffer-safe* if neither it nor anything it may call can
invoke the decompressor: a call from compressed code to a buffer-safe
function can stay an ordinary call -- the buffer cannot be overwritten
during the callee's execution, so no restore stub is needed and the
caller is not re-decompressed on return.

The analysis marks as non-buffer-safe every function with a compressed
block and every function containing an indirect call whose possible
targets include a non-buffer-safe function, then propagates unsafeness
from callees to callers (and along inter-region control transfers)
until a fixpoint; everything unmarked is buffer-safe.
"""

from __future__ import annotations

from repro.program.cfg import call_graph
from repro.program.program import Program


def buffer_safe_functions(
    program: Program,
    compressed_blocks: set[str],
) -> set[str]:
    """Names of buffer-safe functions.

    ``compressed_blocks`` is the union of all region blocks.
    """
    graph = call_graph(program)
    unsafe: set[str] = set()

    # Seed: functions with any compressed block.
    for function in program.functions.values():
        if any(
            block.label in compressed_blocks
            for block in function.blocks.values()
        ):
            unsafe.add(function.name)

    # Seed: indirect calls whose target set could contain unsafe code.
    # Conservatively, an indirect call is dangerous unless every
    # address-taken function is (eventually) safe; to stay monotone we
    # treat an indirect call as an edge to every address-taken function
    # (already encoded by call_graph), so no extra seeding is needed
    # unless there are indirect calls with *no* known targets.
    for function in program.functions.values():
        if function.has_indirect_call and not program.address_taken:
            unsafe.add(function.name)

    # Propagate: a caller of an unsafe function is unsafe.
    changed = True
    while changed:
        changed = False
        for name, callees in graph.items():
            if name in unsafe:
                continue
            if any(callee in unsafe for callee in callees):
                unsafe.add(name)
                changed = True
    return set(program.functions) - unsafe
