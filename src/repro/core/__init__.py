"""The paper's contribution: profile-guided code compression (*squash*).

Pipeline (mirrors Sections 2-6 of the paper):

1. :mod:`repro.core.coldcode` -- identify cold basic blocks from an
   execution profile and a threshold θ (Section 5).
2. :mod:`repro.core.unswitch` -- eliminate indirect jumps through jump
   tables in cold code, or exclude them (Section 6.2).
3. :mod:`repro.core.regions` -- partition compressible blocks into
   regions bounded by the runtime buffer size, then pack small regions
   (Section 4).
4. :mod:`repro.core.buffersafe` -- find functions whose calls need no
   restore stubs (Section 6.1).
5. :mod:`repro.core.plan` / :mod:`repro.core.classify` /
   :mod:`repro.core.layout` / :mod:`repro.core.emit` -- the staged
   rewriter producing the squashed image: stubs, function offset
   table, decompressor, compressed code, stub area, runtime buffer
   (Section 2; :mod:`repro.core.rewriter` keeps the one-call
   ``rewrite()`` interface, and the stages run under
   :mod:`repro.pipeline`).
6. :mod:`repro.core.runtime` -- the runtime decompressor / CreateStub
   service with reference-counted restore stubs (Sections 2.2-2.3).
"""

from repro.core.costmodel import CostModel
from repro.core.coldcode import identify_cold_blocks, cold_code_stats
from repro.core.regions import Region, form_regions, pack_regions
from repro.core.buffersafe import buffer_safe_functions
from repro.core.unswitch import unswitch_cold_tables
from repro.core.pipeline import SquashConfig, SquashResult
from repro.core.pipeline import squash_program as squash
from repro.core.runtime import BufferStrategy, SquashRuntime, RuntimeStats
from repro.core.metrics import Footprint

__all__ = [
    "CostModel",
    "identify_cold_blocks",
    "cold_code_stats",
    "Region",
    "form_regions",
    "pack_regions",
    "buffer_safe_functions",
    "unswitch_cold_tables",
    "squash",
    "SquashConfig",
    "SquashResult",
    "BufferStrategy",
    "SquashRuntime",
    "RuntimeStats",
    "Footprint",
]
