"""Space and time cost-model constants for squash.

Space constants follow the paper where it gives numbers: entry stubs
are 2 words (Section 4's cost function), the runtime restore-stub
scheme costs 8 bytes (2 words) more per stub than the compile-time
scheme's 2-word stubs, and the default runtime-buffer bound is K = 512
bytes, chosen empirically in Figure 3.

Time constants model the software decompressor: a fixed invocation cost
(register save/restore plus the instruction-cache flush), a per-bit
cost for the canonical Huffman DECODE loop, and a per-instruction cost
for materialising decoded words into the buffer.  Figure 7(b) reports
*relative* slowdowns, which depend on these only through the ratio of
decompression work to useful work -- both of which we measure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.encoding import WORD_BYTES


@dataclass(frozen=True)
class CostModel:
    """All tunable space/time constants."""

    # -- space (words unless noted) ---------------------------------------
    #: Runtime-buffer bound K, in bytes (paper default: 512).
    buffer_bound_bytes: int = 512
    #: Size of one entry stub (call + tag word).
    entry_stub_words: int = 2
    #: Size of one compile-time restore stub (call + decompressor call +
    #: tag).
    compiletime_restore_stub_words: int = 2
    #: Size of one runtime restore stub (adds the usage count and the
    #: call-site key: "an additional 8 bytes per stub").
    restore_stub_words: int = 4
    #: Reserved capacity of the runtime stub area, in stubs.  The paper
    #: observed at most 9 concurrent stubs even at θ = 0.01.
    stub_area_capacity: int = 16
    #: Size of the decompressor, including its 32 per-register entry
    #: points (Section 2.3).  The paper keeps the decompressor "small
    #: and quick"; this matches a few hundred instructions of canonical
    #: Huffman decoding plus stub management.
    decompressor_words: int = 360
    #: Assumed compression factor γ for the region-formation heuristic
    #: (the real factor is measured afterwards).  Paper: "approximately
    #: 66% of its original size".
    gamma: float = 0.66

    # -- time (cycles) ------------------------------------------------------
    #: Fixed cost per decompressor invocation (entry dispatch, register
    #: saves, final i-cache flush and jump).
    decomp_invoke_cycles: int = 120
    #: Cost per compressed bit consumed by the DECODE loop.
    decomp_per_bit_cycles: int = 2
    #: Cost per instruction materialised into the runtime buffer.
    decomp_per_instr_cycles: int = 4
    #: Cost of a CreateStub invocation (lookup + count update).
    createstub_cycles: int = 30
    #: Cost when the requested region is already in the buffer.
    buffer_hit_cycles: int = 12

    @property
    def buffer_bound_instrs(self) -> int:
        """K expressed in instructions."""
        return self.buffer_bound_bytes // WORD_BYTES

    def with_buffer_bound(self, nbytes: int) -> "CostModel":
        """A copy with a different buffer bound (Figure 3 sweeps this)."""
        from dataclasses import replace

        return replace(self, buffer_bound_bytes=nbytes)
