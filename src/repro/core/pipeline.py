"""End-to-end squash: the pipeline entry point.

Typical use (through the stable facade — see :mod:`repro.api`)::

    from repro import squash, SquashConfig, squeeze, collect_profile
    from repro.program.layout import layout

    small, _ = squeeze(program)
    base = layout(small)
    profile = collect_profile(small, base.image, profiling_input)
    result = squash(small, profile, SquashConfig(theta=1e-5))
    machine, runtime = result.make_machine(timing_input)
    run = machine.run()

:func:`squash_program` runs the staged pipeline (cold → plan →
classify → layout → encode → emit; see :mod:`repro.pipeline`) and
keeps the per-stage wall-time/counter report on the result — ``repro
squash --explain`` prints it.  Importing it under the historical name
``squash`` from this module still works but raises a
:class:`DeprecationWarning`; new code goes through :func:`repro.api.squash`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import RewriteConfig, SquashConfig  # noqa: F401
from repro.core.descriptor import SquashDescriptor
from repro.core.metrics import (
    Footprint,
    baseline_code_words,
    squashed_footprint,
)
from repro.core.plan import RewriteInfo
from repro.core.runtime import SquashRuntime
from repro.pipeline.manager import StageReport
from repro.program.image import LoadedImage
from repro.program.layout import layout
from repro.program.program import Program
from repro.vm.machine import Machine
from repro.vm.profiler import Profile

__all__ = [
    "SquashConfig",
    "SquashResult",
    "LoadedSquash",
    "load_squashed",
    "squash",
    "squash_program",
]

#: Historical module attributes served (with a warning) by
#: ``__getattr__`` — the name must *not* exist at module level for the
#: hook to fire.
_DEPRECATED = {"squash": "squash_program"}


def __getattr__(name: str):
    target = _DEPRECATED.get(name)
    if target is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import warnings

    warnings.warn(
        f"importing {name!r} from repro.core.pipeline is deprecated; "
        f"use repro.api.{name} (or repro.core.pipeline.{target})",
        DeprecationWarning,
        stacklevel=2,
    )
    return globals()[target]


def _sibling_with_suffix(prefix, suffix: str):
    """``<prefix><suffix>`` without mangling dots inside the name.

    ``pathlib.with_suffix`` would truncate a prefix like
    ``adpcm.theta1e-5`` to ``adpcm.img``; appending preserves it.
    """
    import pathlib

    prefix = pathlib.Path(prefix)
    return prefix.parent / (prefix.name + suffix)


@dataclass
class SquashResult:
    """Everything squash produced for one program at one configuration."""

    image: LoadedImage
    descriptor: SquashDescriptor
    info: RewriteInfo
    footprint: Footprint
    baseline_words: int
    config: SquashConfig
    #: Per-stage wall time and counters for this squash.
    stage_report: StageReport | None = None

    @property
    def reduction(self) -> float:
        """Fractional code-size reduction vs. the uncompressed layout."""
        return self.footprint.reduction_vs(self.baseline_words)

    def make_machine(
        self,
        input_words: list[int] | tuple[int, ...] = (),
        region_cache: bool | None = None,
        **machine_kwargs,
    ) -> tuple[Machine, SquashRuntime]:
        """A fresh machine + runtime pair for this image.

        *region_cache* overrides the cross-runtime region decode cache
        (None: the environment default).  The cache only skips host-side
        bit work; modelled cycles are identical either way.
        """
        runtime = SquashRuntime(self.descriptor, region_cache=region_cache)
        machine = Machine(
            self.image,
            input_words=input_words,
            services=runtime.services(),
            **machine_kwargs,
        )
        return machine, runtime

    def run(
        self,
        input_words: list[int] | tuple[int, ...] = (),
        max_steps: int = 100_000_000,
        region_cache: bool | None = None,
    ):
        """Convenience: run the squashed program on *input_words*."""
        machine, runtime = self.make_machine(
            input_words, region_cache=region_cache
        )
        result = machine.run(max_steps=max_steps)
        return result, runtime

    def save(self, prefix) -> tuple[str, str]:
        """Write the squashed executable to ``<prefix>.img`` (segments
        + memory) and ``<prefix>.json`` (the runtime descriptor).

        Suffixes are appended (never substituted), so a prefix
        containing dots — ``adpcm.theta1e-5`` — round-trips intact.
        The pair can be reloaded with :func:`load_squashed` and run
        without the original program or profile.
        """
        import json

        from repro.core.descriptor import descriptor_to_dict
        from repro.program.imagefile import save_image

        image_path = _sibling_with_suffix(prefix, ".img")
        meta_path = _sibling_with_suffix(prefix, ".json")
        integrity = self.descriptor.integrity
        save_image(
            self.image,
            image_path,
            contexts=integrity.contexts if integrity is not None else (),
        )
        meta_path.write_text(
            json.dumps(descriptor_to_dict(self.descriptor))
        )
        return str(image_path), str(meta_path)


@dataclass
class LoadedSquash:
    """A squashed executable loaded from disk: runnable, no sources."""

    image: LoadedImage
    descriptor: SquashDescriptor

    def make_machine(
        self, input_words: list[int] | tuple[int, ...] = (), **kwargs
    ) -> tuple[Machine, SquashRuntime]:
        runtime = SquashRuntime(self.descriptor)
        machine = Machine(
            self.image,
            input_words=input_words,
            services=runtime.services(),
            **kwargs,
        )
        return machine, runtime


def load_squashed(prefix, verify: bool = True) -> LoadedSquash:
    """Load a squashed executable saved by :meth:`SquashResult.save`.

    With *verify* (the default) the image's integrity checksums --
    codec tables, function offset table, compressed stream -- are
    checked before the pair is returned, so corruption surfaces at load
    time as a :class:`~repro.errors.SquashError` rather than during
    execution.  ``verify=False`` skips the checks (the runtime still
    verifies on first decompression).
    """
    import json

    from repro.core.descriptor import descriptor_from_dict
    from repro.program.imagefile import load_image

    image = load_image(_sibling_with_suffix(prefix, ".img"))
    descriptor = descriptor_from_dict(
        json.loads(_sibling_with_suffix(prefix, ".json").read_text())
    )
    if verify:
        from repro.core.verify import check_image_integrity

        check_image_integrity(image, descriptor)
    return LoadedSquash(image=image, descriptor=descriptor)


def squash_program(
    program: Program,
    profile: Profile,
    config: SquashConfig | None = None,
    baseline_words: int | None = None,
) -> SquashResult:
    """Compress *program*'s cold code guided by *profile*.

    *program* is typically the output of :func:`repro.squeeze.squeeze`
    and *profile* the result of profiling that same program.

    *baseline_words* is the uncompressed code footprint; when the
    caller already holds it (the sweep harness reuses the θ-invariant
    baseline layout across cells) passing it skips re-laying-out the
    baseline image.
    """
    from repro.pipeline.stages import run_squash_pipeline

    config = config or SquashConfig()
    emitted, report, _ = run_squash_pipeline(program, profile, config)
    if baseline_words is None:
        baseline_words = baseline_code_words(
            layout(program, text_base=config.text_base), program
        )
    footprint = squashed_footprint(
        emitted.image, emitted.info.jump_table_words
    )
    return SquashResult(
        image=emitted.image,
        descriptor=emitted.descriptor,
        info=emitted.info,
        footprint=footprint,
        baseline_words=baseline_words,
        config=config,
        stage_report=report,
    )
