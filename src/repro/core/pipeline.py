"""End-to-end squash: the public entry point.

Typical use::

    from repro import squash, SquashConfig, squeeze, collect_profile
    from repro.program.layout import layout

    small, _ = squeeze(program)
    base = layout(small)
    profile = collect_profile(small, base.image, profiling_input)
    result = squash(small, profile, SquashConfig(theta=1e-5))
    machine, runtime = result.make_machine(timing_input)
    run = machine.run()
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.compress.codec import CodecConfig
from repro.core.costmodel import CostModel
from repro.core.descriptor import (
    BufferStrategy,
    RestoreStubScheme,
    SquashDescriptor,
)
from repro.core.metrics import (
    Footprint,
    baseline_code_words,
    squashed_footprint,
)
from repro.core.rewriter import RewriteConfig, RewriteInfo, rewrite
from repro.core.runtime import SquashRuntime
from repro.program.image import LoadedImage
from repro.program.layout import TEXT_BASE, layout
from repro.program.program import Program
from repro.vm.machine import Machine
from repro.vm.profiler import Profile


@dataclass(frozen=True)
class SquashConfig:
    """Every knob of the squash pipeline."""

    #: Cold-code threshold θ (Section 5).  0.0 compresses only
    #: never-executed code; 1.0 considers everything cold.
    theta: float = 0.0
    cost: CostModel = field(default_factory=CostModel)
    strategy: BufferStrategy = BufferStrategy.OVERWRITE
    restore_scheme: RestoreStubScheme = RestoreStubScheme.RUNTIME
    codec: CodecConfig = field(default_factory=CodecConfig)
    #: Pack small regions together (Section 4).
    pack: bool = True
    #: Unswitch cold jump-table dispatches (Section 6.2).
    unswitch: bool = True
    #: Skip decoding when the requested region is already buffered.
    buffer_caching: bool = True
    #: Region construction: "dfs" (Section 4) or "whole_function"
    #: (the future-work alternative of Section 9).
    region_strategy: str = "dfs"
    text_base: int = TEXT_BASE

    def with_theta(self, theta: float) -> "SquashConfig":
        return replace(self, theta=theta)

    def with_buffer_bound(self, nbytes: int) -> "SquashConfig":
        return replace(self, cost=self.cost.with_buffer_bound(nbytes))


@dataclass
class SquashResult:
    """Everything squash produced for one program at one configuration."""

    image: LoadedImage
    descriptor: SquashDescriptor
    info: RewriteInfo
    footprint: Footprint
    baseline_words: int
    config: SquashConfig

    @property
    def reduction(self) -> float:
        """Fractional code-size reduction vs. the uncompressed layout."""
        return self.footprint.reduction_vs(self.baseline_words)

    def make_machine(
        self,
        input_words: list[int] | tuple[int, ...] = (),
        region_cache: bool | None = None,
        **machine_kwargs,
    ) -> tuple[Machine, SquashRuntime]:
        """A fresh machine + runtime pair for this image.

        *region_cache* overrides the cross-runtime region decode cache
        (None: the environment default).  The cache only skips host-side
        bit work; modelled cycles are identical either way.
        """
        runtime = SquashRuntime(self.descriptor, region_cache=region_cache)
        machine = Machine(
            self.image,
            input_words=input_words,
            services=runtime.services(),
            **machine_kwargs,
        )
        return machine, runtime

    def run(
        self,
        input_words: list[int] | tuple[int, ...] = (),
        max_steps: int = 100_000_000,
        region_cache: bool | None = None,
    ):
        """Convenience: run the squashed program on *input_words*."""
        machine, runtime = self.make_machine(
            input_words, region_cache=region_cache
        )
        result = machine.run(max_steps=max_steps)
        return result, runtime

    def save(self, prefix) -> tuple[str, str]:
        """Write the squashed executable to ``<prefix>.img`` (segments
        + memory) and ``<prefix>.json`` (the runtime descriptor).

        The pair can be reloaded with :func:`load_squashed` and run
        without the original program or profile.
        """
        import json
        import pathlib

        from repro.core.descriptor import descriptor_to_dict
        from repro.program.imagefile import save_image

        prefix = pathlib.Path(prefix)
        image_path = prefix.with_suffix(".img")
        meta_path = prefix.with_suffix(".json")
        save_image(self.image, image_path)
        meta_path.write_text(
            json.dumps(descriptor_to_dict(self.descriptor))
        )
        return str(image_path), str(meta_path)


@dataclass
class LoadedSquash:
    """A squashed executable loaded from disk: runnable, no sources."""

    image: LoadedImage
    descriptor: SquashDescriptor

    def make_machine(
        self, input_words: list[int] | tuple[int, ...] = (), **kwargs
    ) -> tuple[Machine, SquashRuntime]:
        runtime = SquashRuntime(self.descriptor)
        machine = Machine(
            self.image,
            input_words=input_words,
            services=runtime.services(),
            **kwargs,
        )
        return machine, runtime


def load_squashed(prefix, verify: bool = True) -> LoadedSquash:
    """Load a squashed executable saved by :meth:`SquashResult.save`.

    With *verify* (the default) the image's integrity checksums --
    codec tables, function offset table, compressed stream -- are
    checked before the pair is returned, so corruption surfaces at load
    time as a :class:`~repro.errors.SquashError` rather than during
    execution.  ``verify=False`` skips the checks (the runtime still
    verifies on first decompression).
    """
    import json
    import pathlib

    from repro.core.descriptor import descriptor_from_dict
    from repro.program.imagefile import load_image

    prefix = pathlib.Path(prefix)
    image = load_image(prefix.with_suffix(".img"))
    descriptor = descriptor_from_dict(
        json.loads(prefix.with_suffix(".json").read_text())
    )
    if verify:
        from repro.core.verify import check_image_integrity

        check_image_integrity(image, descriptor)
    return LoadedSquash(image=image, descriptor=descriptor)


def squash(
    program: Program,
    profile: Profile,
    config: SquashConfig | None = None,
) -> SquashResult:
    """Compress *program*'s cold code guided by *profile*.

    *program* is typically the output of :func:`repro.squeeze.squeeze`
    and *profile* the result of profiling that same program.
    """
    config = config or SquashConfig()
    rewrite_config = RewriteConfig(
        theta=config.theta,
        cost=config.cost,
        strategy=config.strategy,
        restore_scheme=config.restore_scheme,
        codec=config.codec,
        pack=config.pack,
        unswitch=config.unswitch,
        buffer_caching=config.buffer_caching,
        region_strategy=config.region_strategy,
        text_base=config.text_base,
    )
    image, descriptor, info = rewrite(program, profile, rewrite_config)
    baseline = baseline_code_words(
        layout(program, text_base=config.text_base), program
    )
    footprint = squashed_footprint(image, info.jump_table_words)
    return SquashResult(
        image=image,
        descriptor=descriptor,
        info=info,
        footprint=footprint,
        baseline_words=baseline,
        config=config,
    )
