"""Footprint accounting.

Section 2.1: "when comparing the space usage of the original and
compressed programs, the latter must take into account the space
occupied by the stubs, the decompressor, the function offset table, the
compressed code, the runtime buffer, and the never-compressed original
program code."  Every one of those parts is a named field here and a
real segment in the image; the identity between the two is tested.

Jump tables are counted on both sides (they are code-adjacent read-only
data, and unswitching reclaims them), so their reclamation shows up as
a size win.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.program.image import LoadedImage
from repro.program.layout import LayoutResult
from repro.program.program import Program


@dataclass(frozen=True)
class Footprint:
    """Code footprint of a squashed image, in words."""

    never_compressed: int
    entry_stubs: int
    decompressor: int
    offset_table: int
    stub_area: int
    runtime_buffer: int
    compressed: int
    jump_tables: int

    @property
    def total(self) -> int:
        """Total code footprint (the paper's measure)."""
        return (
            self.never_compressed
            + self.entry_stubs
            + self.decompressor
            + self.offset_table
            + self.stub_area
            + self.runtime_buffer
            + self.compressed
            + self.jump_tables
        )

    def reduction_vs(self, baseline_words: int) -> float:
        """Fractional size reduction relative to *baseline_words*."""
        if baseline_words == 0:
            return 0.0
        return 1.0 - self.total / baseline_words


def squashed_footprint(image: LoadedImage, jump_table_words: int) -> Footprint:
    """Read the footprint off the squashed image's segments."""
    def seg(name: str) -> int:
        return image.segment(name).size

    return Footprint(
        never_compressed=seg("text"),
        entry_stubs=seg("entry_stubs"),
        decompressor=seg("decompressor"),
        offset_table=seg("offset_table"),
        stub_area=seg("stub_area"),
        runtime_buffer=seg("runtime_buffer"),
        compressed=seg("compressed"),
        jump_tables=jump_table_words,
    )


def baseline_code_words(
    layout_result: LayoutResult, program: Program
) -> int:
    """Code footprint of an uncompressed (squeezed) image: its text
    plus its jump tables."""
    text = layout_result.image.segment("text").size
    tables = sum(
        obj.size for obj in program.data.values() if obj.is_jump_table
    )
    return text + tables
