"""Stage 1 of the rewriter: cold code, exclusions, region formation.

Turns (program, profile, θ) into a :class:`RegionPlanResult`: the
working program copy (unswitching may rewrite cold jump-table
dispatches in place), the compressible block set, and the packed
regions that will be compressed as units.

Region construction is a plugin point: :data:`REGION_STRATEGIES` maps
strategy names to formation callables, so an alternative partitioner
(the paper's Section 9 future work, or the access-pattern and
function-granularity schemes of the related MIPS / APCC work) is added
by registering a function, not by editing this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.compress.codec import CompressedBlob
from repro.core.coldcode import identify_cold_blocks
from repro.core.descriptor import BufferStrategy
from repro.core.regions import (
    Region,
    RegionContext,
    form_regions,
    form_regions_whole_function,
    pack_regions,
)
from repro.core.unswitch import UnswitchResult, unswitch_cold_tables
from repro.pipeline.registry import Registry
from repro.program.program import Program
from repro.vm.profiler import Profile

__all__ = [
    "REGION_STRATEGIES",
    "RegionPlanResult",
    "RewriteInfo",
    "data_referenced_labels",
    "plan_regions",
]

#: Region-formation plugins: name -> f(program, compressible, cost,
#: ctx) -> list[Region].  ``SquashConfig.region_strategy`` selects one.
REGION_STRATEGIES: Registry[Callable] = Registry("region strategy")
REGION_STRATEGIES.register("dfs", form_regions)
REGION_STRATEGIES.register("whole_function", form_regions_whole_function)


@dataclass
class RewriteInfo:
    """Measurements taken during rewriting (feeds the experiments)."""

    cold: set[str] = field(default_factory=set)
    compressible: set[str] = field(default_factory=set)
    compressed_blocks: set[str] = field(default_factory=set)
    regions: list[Region] = field(default_factory=list)
    safe_functions: set[str] = field(default_factory=set)
    unswitch: UnswitchResult = field(default_factory=UnswitchResult)
    entry_stub_count: int = 0
    xcall_sites: int = 0
    intra_region_calls: int = 0
    safe_calls: int = 0
    compressed_original_instrs: int = 0
    never_compressed_words: int = 0
    jump_table_words: int = 0
    blob: CompressedBlob | None = None

    @property
    def gamma_measured(self) -> float:
        """Measured compression factor: compressed words / original
        instruction words (tables included)."""
        if not self.compressed_original_instrs or self.blob is None:
            return 1.0
        return self.blob.total_words / self.compressed_original_instrs


@dataclass
class RegionPlanResult:
    """Everything region formation decided (the ``plan`` artifact)."""

    #: The working copy (unswitching may have rewritten it).
    program: Program
    cold: set[str]
    excluded: set[str]
    compressible: set[str]
    regions: list[Region]
    region_of: dict[str, int]
    ctx: RegionContext
    data_ref_labels: set[str]
    unswitch: UnswitchResult
    compressed: set[str]


def data_referenced_labels(
    program: Program, entries: dict[str, str]
) -> set[str]:
    """Block labels reachable through data relocations (jump tables and
    function-pointer tables)."""
    labels: set[str] = set()
    for obj in program.data.values():
        for target in obj.relocs.values():
            if target in program.functions:
                labels.add(entries[target])
            else:
                labels.add(target)
    return labels


def plan_regions(
    program: Program,
    profile: Profile,
    config,
    info: RewriteInfo,
    cold: set[str] | None = None,
) -> RegionPlanResult:
    """Exclusions, unswitching, and region packing (Sections 4-5).

    *program* is mutated in place (unswitching); callers pass a copy.
    *cold* is the cold-code stage's output; when omitted it is derived
    here (Section 5).
    """
    cost = config.cost

    # -- cold code (Section 5) ------------------------------------------
    if cold is None:
        cold = set(identify_cold_blocks(profile, config.theta).cold)
    else:
        cold = set(cold)
    info.cold = set(cold)

    # -- unswitching / exclusions (Sections 2.2, 6.2) -------------------
    excluded: set[str] = set()
    if config.unswitch:
        info.unswitch = unswitch_cold_tables(program, cold, profile)
        excluded |= info.unswitch.excluded
    else:
        for _, block in program.all_blocks():
            if block.jump_table is not None:
                table = program.data[block.jump_table.data_symbol]
                excluded.add(block.label)
                excluded.update(table.relocs.values())

    for function in program.functions.values():
        if function.calls_setjmp:
            excluded.update(function.blocks)
        if any(
            block.ends_in_indirect_jump and block.jump_table is None
            for block in function.blocks.values()
        ):
            # Computed goto with unknown targets: exclude the function.
            excluded.update(function.blocks)
        if config.strategy is BufferStrategy.NO_CALLS:
            for block in function.blocks.values():
                if block.has_call:
                    excluded.add(block.label)

    compressible = cold - excluded
    info.compressible = set(compressible)

    # -- regions (Section 4) --------------------------------------------
    ctx = RegionContext.build(program)
    entries = ctx.entries
    data_refs = data_referenced_labels(program, entries)
    ctx.forced_entries |= data_refs

    form = REGION_STRATEGIES.get(config.region_strategy)
    regions = form(program, compressible, cost, ctx)
    if config.pack:
        regions = pack_regions(program, regions, cost, ctx)
    info.regions = regions

    compressed: set[str] = set()
    for region in regions:
        compressed.update(region.blocks)
    info.compressed_blocks = compressed
    region_of: dict[str, int] = {}
    for region in regions:
        for label in region.blocks:
            region_of[label] = region.index

    return RegionPlanResult(
        program=program,
        cold=cold,
        excluded=excluded,
        compressible=compressible,
        regions=regions,
        region_of=region_of,
        ctx=ctx,
        data_ref_labels=data_refs,
        unswitch=info.unswitch,
        compressed=compressed,
    )
