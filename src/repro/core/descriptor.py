"""Shared descriptors for the squashed image.

Everything the runtime decompressor needs is physically present in the
image (the offset table, the serialized Huffman tables, the compressed
stream, the stub area); the descriptor carries the *addresses* of those
areas plus per-region layout facts, playing the role of the squashed
executable's header.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.costmodel import CostModel
from repro.core.integrity import (
    ContextIntegrity,
    ImageIntegrity,
    RegionIntegrity,
)


class BufferStrategy(enum.Enum):
    """Buffer-management options of Section 2.2."""

    #: Refuse to compress any block containing a function call
    #: (option 1 in the paper).
    NO_CALLS = "no_calls"
    #: Never discard decompressed code; each region gets a permanent
    #: area (option 2; JIT-like, large footprint).
    DECOMPRESS_ONCE = "decompress_once"
    #: One small buffer; calls out of it overwrite the caller, which is
    #: restored on return via restore stubs (option 3 -- the paper's).
    OVERWRITE = "overwrite"


class RestoreStubScheme(enum.Enum):
    """How restore stubs come into existence (Section 2.2)."""

    #: All restore stubs are created at compile time: every call site in
    #: compressed code gets a permanent 3-word stub.
    COMPILE_TIME = "compile_time"
    #: Restore stubs are created on demand by CreateStub and reference
    #: counted (the paper's scheme).
    RUNTIME = "runtime"


@dataclass
class RegionDescriptor:
    """Layout facts for one compressed region."""

    index: int
    #: Bit offset of the region in the compressed stream (this value is
    #: also stored in the in-image function offset table).
    bit_offset: int
    #: Expanded size in the buffer, in words, including the entry-jump
    #: slot 0.
    expanded_size: int
    #: Address the region is decompressed to (the runtime buffer, or a
    #: dedicated area under DECOMPRESS_ONCE).
    base: int
    #: Buffer slot of each member block (label -> slot; slot 0 is the
    #: entry jump).
    block_slots: dict[str, int] = field(default_factory=dict)
    #: Number of original instructions (pre-expansion, no sentinel).
    original_instrs: int = 0


@dataclass
class EntryStubInfo:
    """One entry stub: the in-image trampoline into a compressed block."""

    label: str
    region: int
    #: Buffer slot control should reach after decompression.
    offset: int
    #: Address of the stub itself.
    addr: int


@dataclass
class CompileTimeStubInfo:
    """One compile-time restore stub (COMPILE_TIME scheme only)."""

    addr: int
    region: int
    #: Buffer slot of the instruction after the call.
    return_offset: int


@dataclass
class SquashDescriptor:
    """Addresses and metadata of every squashed-image area."""

    strategy: BufferStrategy
    restore_scheme: RestoreStubScheme
    cost: CostModel
    #: Base of the decompressor; entry point for return-address register
    #: r is ``decomp_base + r`` (Section 2.3's multiple entry points).
    decomp_base: int
    decomp_words: int
    offset_table_addr: int
    table_addr: int
    table_words: int
    stream_addr: int
    stream_words: int
    stub_area_base: int
    stub_area_words: int
    #: Capacity in stubs (RUNTIME scheme).
    stub_capacity: int
    buffer_base: int
    buffer_words: int
    regions: list[RegionDescriptor] = field(default_factory=list)
    entry_stubs: list[EntryStubInfo] = field(default_factory=list)
    compile_time_stubs: list[CompileTimeStubInfo] = field(
        default_factory=list
    )
    #: Whether the decompressor skips decoding when the requested region
    #: is already buffered.
    buffer_caching: bool = True
    #: CRC32 checksums over the trusted areas (None for images produced
    #: before the integrity format, which then run unchecked).
    integrity: ImageIntegrity | None = None

    #: Words of one runtime restore stub: call, tag, usage count, key.
    RESTORE_STUB_WORDS = 4
    #: Words of one compile-time restore stub: call, decompressor call,
    #: tag.
    CT_STUB_WORDS = 3

    def region(self, index: int) -> RegionDescriptor:
        return self.regions[index]

    def in_buffer(self, addr: int) -> bool:
        """True if *addr* lies in the runtime buffer (or, under
        DECOMPRESS_ONCE, in any region's area)."""
        return self.buffer_base <= addr < self.buffer_base + self.buffer_words

    def in_stub_area(self, addr: int) -> bool:
        return (
            self.stub_area_base
            <= addr
            < self.stub_area_base + self.stub_area_words
        )

    def region_at(self, addr: int) -> RegionDescriptor | None:
        """The region whose decompression area contains *addr*
        (meaningful under DECOMPRESS_ONCE)."""
        for region in self.regions:
            if region.base <= addr < region.base + region.expanded_size:
                return region
        return None


def descriptor_to_dict(desc: SquashDescriptor) -> dict:
    """A JSON-serialisable form of the descriptor (the squashed
    executable's header, for :meth:`SquashResult.save`)."""
    import dataclasses

    data = dataclasses.asdict(desc)
    data["strategy"] = desc.strategy.value
    data["restore_scheme"] = desc.restore_scheme.value
    return data


def descriptor_from_dict(data: dict) -> SquashDescriptor:
    """Inverse of :func:`descriptor_to_dict`."""
    from repro.core.costmodel import CostModel

    data = dict(data)
    data["strategy"] = BufferStrategy(data["strategy"])
    data["restore_scheme"] = RestoreStubScheme(data["restore_scheme"])
    data["cost"] = CostModel(**data["cost"])
    data["regions"] = [
        RegionDescriptor(**region) for region in data["regions"]
    ]
    data["entry_stubs"] = [
        EntryStubInfo(**stub) for stub in data["entry_stubs"]
    ]
    data["compile_time_stubs"] = [
        CompileTimeStubInfo(**stub) for stub in data["compile_time_stubs"]
    ]
    integrity = data.get("integrity")
    if integrity is not None:
        integrity = dict(integrity)
        integrity["regions"] = [
            RegionIntegrity(**region) for region in integrity["regions"]
        ]
        # Descriptors written before the CodecModel layer carry no
        # per-context seals; default to the unsealed form.
        integrity["contexts"] = [
            ContextIntegrity(**ctx)
            for ctx in integrity.get("contexts", ())
        ]
        data["integrity"] = ImageIntegrity(**integrity)
    return SquashDescriptor(**data)
