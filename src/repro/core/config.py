"""The squash configuration: every knob, defined exactly once.

Historically the rewriter kept its own hand-copied ``RewriteConfig``
mirror of :class:`SquashConfig`; a knob added to one could silently
never reach the other.  There is now a single frozen dataclass and
``RewriteConfig`` is an alias for it — a new field is visible to every
layer the moment it is declared here.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.compress.codec import CodecConfig
from repro.core.costmodel import CostModel
from repro.core.descriptor import BufferStrategy, RestoreStubScheme
from repro.program.layout import TEXT_BASE

__all__ = ["SquashConfig", "RewriteConfig"]


@dataclass(frozen=True)
class SquashConfig:
    """Every knob of the squash pipeline."""

    #: Cold-code threshold θ (Section 5).  0.0 compresses only
    #: never-executed code; 1.0 considers everything cold.
    theta: float = 0.0
    cost: CostModel = field(default_factory=CostModel)
    strategy: BufferStrategy = BufferStrategy.OVERWRITE
    restore_scheme: RestoreStubScheme = RestoreStubScheme.RUNTIME
    codec: CodecConfig = field(default_factory=CodecConfig)
    #: Pack small regions together (Section 4).
    pack: bool = True
    #: Unswitch cold jump-table dispatches (Section 6.2).
    unswitch: bool = True
    #: Skip decoding when the requested region is already buffered.
    buffer_caching: bool = True
    #: Region construction plugin (see
    #: :data:`repro.core.plan.REGION_STRATEGIES`): "dfs" (Section 4)
    #: or "whole_function" (the future-work alternative of Section 9).
    region_strategy: str = "dfs"
    text_base: int = TEXT_BASE
    #: Codec variant name from :data:`repro.compress.codec.
    #: CODEC_VARIANTS` ("" keeps the explicit :attr:`codec` object).
    #: Resolution order at encode time: this field, then the
    #: ``REPRO_CODEC_VARIANT`` setting, then :attr:`codec`; unknown
    #: names warn once and fall back to ``baseline``.
    codec_variant: str = ""

    def with_theta(self, theta: float) -> "SquashConfig":
        return replace(self, theta=theta)

    def with_buffer_bound(self, nbytes: int) -> "SquashConfig":
        return replace(self, cost=self.cost.with_buffer_bound(nbytes))

    def effective_codec(self) -> CodecConfig:
        """The :class:`CodecConfig` the encoder actually uses:
        :attr:`codec_variant` when set, else the ``REPRO_CODEC_VARIANT``
        setting, else the explicit :attr:`codec` object."""
        from repro import settings as _settings
        from repro.compress.codec import resolve_codec_variant

        variant = self.codec_variant or _settings.current().codec_variant
        if variant:
            return resolve_codec_variant(variant)
        return self.codec


#: The rewriter consumes the same knobs the pipeline exposes.  Keeping
#: this an *alias* (not a copy) is what guarantees a newly added knob
#: can never be dropped between the two layers.
RewriteConfig = SquashConfig
