"""Stage 3 of the rewriter: segment layout.

Assigns the address of every segment of the squashed image —
never-compressed text, entry stubs, decompressor, function offset
table, stub area, runtime buffer, data, compressed area — and of every
stub inside them, from the classified region plans.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.classify import ClassifiedSites, RegionSitePlan
from repro.core.descriptor import (
    BufferStrategy,
    CompileTimeStubInfo,
    EntryStubInfo,
    RestoreStubScheme,
    SquashDescriptor,
)
from repro.core.plan import RegionPlanResult
from repro.core.regions import Region, RegionContext, entry_blocks
from repro.program.blocks import BasicBlock
from repro.program.layout import needs_fallthrough_br
from repro.program.program import Program

__all__ = ["SegmentLayout", "build_layout"]


@dataclass
class SegmentLayout:
    """Addresses of every segment and every stub."""

    text_base: int
    text_words: int
    text_block_addr: dict[str, int]
    entry_stub_base: int
    entry_stubs: list[EntryStubInfo]
    entry_stub_of: dict[str, int]  # label -> stub addr
    decomp_base: int
    decomp_words: int
    offset_table_addr: int
    n_regions: int
    stub_area_base: int
    stub_area_words: int
    stub_capacity: int
    ct_stub_bases: dict[tuple[int, int], int]
    ct_stub_infos: list[CompileTimeStubInfo]
    buffer_base: int
    buffer_words: int
    data_base: int
    data_addr: dict[str, int]
    data_words: int
    compressed_base: int
    entries: dict[str, str]
    text_plan: list[tuple[BasicBlock, str | None]]
    region_bases: dict[int, int]

    @classmethod
    def build(
        cls,
        prog: Program,
        compressed: set[str],
        plans: list[RegionSitePlan],
        regions: list[Region],
        ctx: RegionContext,
        config,
        data_ref_labels: set[str],
    ) -> "SegmentLayout":
        cost = config.cost
        # Text plan: remaining (never-compressed) blocks per function.
        text_plan: list[tuple[BasicBlock, str | None]] = []
        for function in prog.functions.values():
            remaining = [
                b for b in function.block_order() if b.label not in compressed
            ]
            for position, block in enumerate(remaining):
                next_label = (
                    remaining[position + 1].label
                    if position + 1 < len(remaining)
                    else None
                )
                text_plan.append((block, next_label))

        addr = config.text_base
        text_block_addr: dict[str, int] = {}
        for block, next_label in text_plan:
            text_block_addr[block.label] = addr
            addr += block.size
            if needs_fallthrough_br(block, next_label):
                addr += 1
        text_words = addr - config.text_base

        # Entry stubs: per region, blocks with external entries, in slot
        # order.
        entry_stub_base = addr
        entry_stubs: list[EntryStubInfo] = []
        entry_stub_of: dict[str, int] = {}
        for plan in plans:
            region_set = set(plan.region.blocks)
            needing = entry_blocks(region_set, ctx)
            for label in sorted(needing, key=lambda l: plan.block_slots[l]):
                stub_addr = (
                    entry_stub_base
                    + len(entry_stubs) * cost.entry_stub_words
                )
                entry_stubs.append(
                    EntryStubInfo(
                        label=label,
                        region=plan.region.index,
                        offset=plan.block_slots[label],
                        addr=stub_addr,
                    )
                )
                entry_stub_of[label] = stub_addr
        addr = entry_stub_base + len(entry_stubs) * cost.entry_stub_words

        # Decompressor (entry points at decomp_base + r).
        decomp_base = addr
        decomp_words = max(cost.decompressor_words, 64)
        addr += decomp_words

        # Function offset table.
        offset_table_addr = addr
        addr += len(regions)

        # Stub area.
        stub_area_base = addr
        ct_stub_bases: dict[tuple[int, int], int] = {}
        ct_stub_infos: list[CompileTimeStubInfo] = []
        if config.restore_scheme is RestoreStubScheme.COMPILE_TIME:
            cursor = stub_area_base
            for plan in plans:
                for site_key in sorted(
                    plan.ct_sites, key=plan.ct_sites.get
                ):
                    ordinal = plan.ct_sites[site_key]
                    ct_stub_bases[(plan.region.index, ordinal)] = cursor
                    cursor += SquashDescriptor.CT_STUB_WORDS
            stub_area_words = cursor - stub_area_base
            stub_capacity = 0
        else:
            stub_capacity = cost.stub_area_capacity
            stub_area_words = (
                stub_capacity * SquashDescriptor.RESTORE_STUB_WORDS
            )
        addr = stub_area_base + stub_area_words

        # Runtime buffer (or per-region areas).
        buffer_base = addr
        region_bases: dict[int, int] = {}
        if config.strategy is BufferStrategy.DECOMPRESS_ONCE:
            cursor = buffer_base
            for plan in plans:
                region_bases[plan.region.index] = cursor
                plan.base = cursor
                cursor += plan.expanded_size
            buffer_words = cursor - buffer_base
        else:
            buffer_words = max(
                (plan.expanded_size for plan in plans), default=0
            )
            for plan in plans:
                region_bases[plan.region.index] = buffer_base
                plan.base = buffer_base
        addr = buffer_base + buffer_words

        # Data.
        data_base = addr
        data_addr: dict[str, int] = {}
        for obj in prog.data.values():
            data_addr[obj.name] = addr
            addr += obj.size
        data_words = addr - data_base

        compressed_base = addr

        return cls(
            text_base=config.text_base,
            text_words=text_words,
            text_block_addr=text_block_addr,
            entry_stub_base=entry_stub_base,
            entry_stubs=entry_stubs,
            entry_stub_of=entry_stub_of,
            decomp_base=decomp_base,
            decomp_words=decomp_words,
            offset_table_addr=offset_table_addr,
            n_regions=len(regions),
            stub_area_base=stub_area_base,
            stub_area_words=stub_area_words,
            stub_capacity=stub_capacity,
            ct_stub_bases=ct_stub_bases,
            ct_stub_infos=ct_stub_infos,
            buffer_base=buffer_base,
            buffer_words=buffer_words,
            data_base=data_base,
            data_addr=data_addr,
            data_words=data_words,
            compressed_base=compressed_base,
            entries=ctx.entries,
            text_plan=text_plan,
            region_bases=region_bases,
        )

    def resolve_code_label(self, label: str) -> int:
        """Final address of a block: its text address, or its entry
        stub if it was compressed."""
        addr = self.text_block_addr.get(label)
        if addr is not None:
            return addr
        stub = self.entry_stub_of.get(label)
        if stub is None:
            raise KeyError(
                f"compressed block {label!r} is referenced but has no "
                f"entry stub"
            )
        return stub

    def resolve_func(self, name: str) -> int:
        return self.resolve_code_label(self.entries[name])

    def ct_stub_addr(self, region_index: int, ordinal: int) -> int:
        return self.ct_stub_bases[(region_index, ordinal)]


def build_layout(
    plan: RegionPlanResult,
    classified: ClassifiedSites,
    config,
) -> SegmentLayout:
    """The ``layout`` stage entry point."""
    return SegmentLayout.build(
        plan.program,
        plan.compressed,
        classified.plans,
        plan.regions,
        plan.ctx,
        config,
        plan.data_ref_labels,
    )
