"""The runtime system: decompressor + CreateStub (Sections 2.2-2.3).

The decompressor area of a squashed image has one entry point per
return-address register (``decomp_base + r``).  Reaching an entry traps
into this service, which reproduces the paper's combined
CreateStub/Decompress function:

* if the return address lies **inside the runtime buffer**, the caller
  is the ``bsr $r, CreateStub`` half of an expanded call: create (or
  reuse, bumping its usage count) the reference-counted restore stub
  for this call site, point ``$r`` at it, and resume at the following
  ``br``/``jsr`` which transfers to the callee;
* otherwise the return address points at a **tag word** (after an entry
  stub's or restore stub's call): read the region index and buffer
  offset from the tag, decrement-and-maybe-free the restore stub if
  that is where we came from, decompress the region into the buffer
  (writing the entry jump at slot 0), and jump to the buffer start.

Decompression cost is charged from *measured* work: the exact number of
compressed bits consumed by the canonical Huffman DECODE loop and the
number of instructions materialised, plus fixed invocation overhead.
"""

from __future__ import annotations

import hashlib
from array import array
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Sequence
from zlib import crc32

from repro.compress.codec import ProgramCodec
from repro.compress.streams import (
    OP_XCALLD,
    OP_XCALLI,
    CodecInstr,
    codec_to_instruction,
)
from repro.core.descriptor import (
    BufferStrategy,
    RestoreStubScheme,
    SquashDescriptor,
)
from repro.core.integrity import (
    bit_range_crc,
    check_area_crc,
    check_context_seals,
    check_offset_table,
)
from repro.errors import (
    BufferOverrunError,
    CodecTableError,
    CorruptBlobError,
    OffsetTableError,
    SquashError,
    StubAreaOverflow,
    TruncatedStreamError,
)
from repro import settings as _settings
from repro.isa.encoding import encode
from repro.isa.fields import FieldKind, from_bits
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.isa.instruction import Instruction
from repro.isa.opcodes import NUM_REGS, Op, REG_ZERO
from repro.program.layout import branch_displacement
from repro.vm.machine import Machine

__all__ = [
    "BufferStrategy",
    "RestoreStubScheme",
    "SquashRuntime",
    "RuntimeStats",
    "StubAreaOverflow",
    "clear_region_decode_cache",
    "region_cache_default",
    "region_decode_cache_info",
]

#: Unified metrics sink: the decode-cache counters mirror here so
#: ``repro metrics`` reports them alongside every other component.
_METRICS = get_registry()


def region_cache_default() -> bool:
    """Default for the cross-runtime region decode cache;
    ``REPRO_REGION_CACHE=0`` (or ``region_cache=False`` via
    :mod:`repro.settings`) disables it."""
    return _settings.current().region_cache

#: Entries kept in the region decode cache before the oldest is evicted.
REGION_CACHE_MAX_ENTRIES = 4096

# Decoded regions shared across SquashRuntime instances (and hence
# across repeated runs of the same squashed image): (blob digest, bit
# offset) -> (decoded items, bits consumed, seal).  This skips host-side
# bit-level work only; the *guest* is still charged the full modelled
# per-bit/per-instruction decode cost from the stored bit count, so
# cycle numbers are identical with the cache on or off.  The seal is a
# CRC over the entry contents: a poisoned entry (mutated after being
# cached) fails the seal on hit and is re-decoded from the blob instead
# of being executed.
_REGION_DECODE_CACHE: (
    "OrderedDict[tuple[bytes, int], tuple[tuple, int, int]]"
) = OrderedDict()
_REGION_CACHE_HITS = 0
_REGION_CACHE_MISSES = 0


def _entry_seal(items: tuple, bits: int) -> int:
    """Integrity seal of one region decode cache entry.

    ``repr`` of the (frozen-dataclass) item tuple is deterministic, so
    any in-place mutation of a cached entry changes the seal.
    """
    return crc32(repr((items, bits)).encode())


def clear_region_decode_cache() -> None:
    """Drop every entry of the cross-runtime region decode cache."""
    global _REGION_CACHE_HITS, _REGION_CACHE_MISSES
    _REGION_DECODE_CACHE.clear()
    _REGION_CACHE_HITS = 0
    _REGION_CACHE_MISSES = 0


def region_decode_cache_info() -> dict[str, int]:
    """Counters of the cross-runtime region decode cache."""
    return {
        "entries": len(_REGION_DECODE_CACHE),
        "hits": _REGION_CACHE_HITS,
        "misses": _REGION_CACHE_MISSES,
    }


@dataclass
class RuntimeStats:
    """Dynamic counters (Section 2.2's in-text numbers come from here)."""

    decompressions: int = 0
    buffer_hits: int = 0
    createstub_calls: int = 0
    stubs_created: int = 0
    stub_reuses: int = 0
    stubs_freed: int = 0
    max_live_stubs: int = 0
    restore_invocations: int = 0
    bits_decoded: int = 0
    instrs_materialised: int = 0
    decomp_cycles: int = 0
    #: Stale zero-refcount stubs reclaimed on StubAreaOverflow recovery.
    stub_reclaims: int = 0
    #: Cross-runtime cache entries rejected by their integrity seal.
    cache_rejects: int = 0


class _MemWords:
    """Word-indexable view of machine memory (the compressed stream)."""

    def __init__(self, machine: Machine, base: int, length: int):
        self._mem = machine.mem
        self._base = base
        self._length = length

    def __getitem__(self, index: int) -> int:
        if not 0 <= index < self._length:
            raise IndexError(index)
        return self._mem[self._base + index]

    def __len__(self) -> int:
        return self._length


class SquashRuntime:
    """Per-execution runtime state for one squashed image.

    Create one instance per :class:`Machine` and pass
    :meth:`services` to it; the instance tracks which region is
    buffered, the live restore stubs, and all statistics.
    """

    def __init__(
        self,
        descriptor: SquashDescriptor,
        region_cache: bool | None = None,
    ):
        self.desc = descriptor
        self.stats = RuntimeStats()
        self.current_region: int | None = None
        self._materialised: set[int] = set()
        self._codec: ProgramCodec | None = None
        self._live_stubs: dict[tuple[int, int], int] = {}
        self._slot_key: dict[int, tuple[int, int]] = {}
        self._free_slots = list(range(descriptor.stub_capacity))
        self._expanded_cache: dict[int, tuple[list[int], int]] = {}
        self._region_cache_enabled = (
            region_cache_default()
            if region_cache is None
            else bool(region_cache)
        )
        self._tracer = get_tracer()
        self._blob_digest: bytes | None = None
        self._image_verified = False
        self._batch_warm_tried = False

    def services(self) -> dict[int, Callable[[Machine], None]]:
        """Trap handlers for every decompressor entry point."""
        handlers: dict[int, Callable[[Machine], None]] = {}
        for reg in range(NUM_REGS):
            addr = self.desc.decomp_base + reg

            def handler(machine: Machine, reg: int = reg) -> None:
                self._dispatch(machine, reg)

            handlers[addr] = handler
        return handlers

    # -- dispatch --------------------------------------------------------

    def _dispatch(self, machine: Machine, reg: int) -> None:
        retaddr = machine.regs[reg]
        desc = self.desc
        if (
            desc.strategy is not BufferStrategy.DECOMPRESS_ONCE
            and desc.in_buffer(retaddr)
        ):
            self._create_stub(machine, reg, retaddr)
        else:
            self._decompress(machine, retaddr)

    # -- CreateStub (runtime restore stubs) --------------------------------

    def _create_stub(self, machine: Machine, reg: int, retaddr: int) -> None:
        desc = self.desc
        if desc.restore_scheme is not RestoreStubScheme.RUNTIME:
            raise AssertionError(
                "CreateStub reached under the compile-time stub scheme"
            )
        if self.current_region is None:
            raise AssertionError("CreateStub with no region in the buffer")
        offset = retaddr - desc.buffer_base
        key = (self.current_region, offset)
        slot = self._live_stubs.get(key)
        if slot is None:
            if not self._free_slots and not self._reclaim_stubs(machine):
                raise StubAreaOverflow(
                    f"no free restore-stub slots for call site {key}",
                    region=self.current_region,
                )
            slot = min(self._free_slots)
            self._free_slots.remove(slot)
            stub_addr = self._stub_addr(slot)
            call = Instruction(
                Op.BSR,
                ra=reg,
                imm=branch_displacement(stub_addr, desc.decomp_base + reg),
            )
            machine.write_word(stub_addr, encode(call))
            machine.write_word(
                stub_addr + 1,
                (self.current_region << 16) | (offset + 1),
            )
            machine.write_word(stub_addr + 2, 1)
            machine.write_word(
                stub_addr + 3, (self.current_region << 16) | offset
            )
            self._live_stubs[key] = slot
            self._slot_key[slot] = key
            self.stats.stubs_created += 1
            self.stats.max_live_stubs = max(
                self.stats.max_live_stubs, len(self._live_stubs)
            )
            if self._tracer.enabled:
                self._tracer.emit(
                    "stub.create", "runtime", ts=machine.cycles,
                    region=self.current_region, offset=offset, slot=slot,
                )
        else:
            stub_addr = self._stub_addr(slot)
            count = machine.read_word(stub_addr + 2)
            machine.write_word(stub_addr + 2, count + 1)
            self.stats.stub_reuses += 1
            if self._tracer.enabled:
                self._tracer.emit(
                    "stub.reuse", "runtime", ts=machine.cycles,
                    region=self.current_region, offset=offset, slot=slot,
                )
        machine.regs[reg] = self._stub_addr(slot)
        machine.pc = retaddr  # resume at the br/jsr that reaches the callee
        self._charge(machine, desc.cost.createstub_cycles)
        self.stats.createstub_calls += 1

    def _stub_addr(self, slot: int) -> int:
        return (
            self.desc.stub_area_base
            + slot * SquashDescriptor.RESTORE_STUB_WORDS
        )

    def _reclaim_stubs(self, machine: Machine) -> int:
        """Graceful degradation on stub-area pressure: free any stub
        whose in-memory usage count is zero but whose slot is still
        marked live (a count word clobbered to zero, or a release that
        never went through the stub itself).  Returns slots freed."""
        freed = 0
        for slot in list(self._slot_key):
            if machine.read_word(self._stub_addr(slot) + 2) == 0:
                key = self._slot_key.pop(slot)
                self._live_stubs.pop(key, None)
                self._free_slots.append(slot)
                freed += 1
        if freed:
            self.stats.stub_reclaims += freed
            self.stats.stubs_freed += freed
            if self._tracer.enabled:
                self._tracer.emit(
                    "stub.reclaim", "runtime", ts=machine.cycles,
                    freed=freed,
                )
        return freed

    # -- Decompress ---------------------------------------------------------

    def _decompress(self, machine: Machine, retaddr: int) -> None:
        desc = self.desc
        tag = machine.read_word(retaddr)

        if desc.in_stub_area(retaddr):
            self.stats.restore_invocations += 1
            if self._tracer.enabled:
                self._tracer.emit(
                    "stub.restore_fire", "runtime", ts=machine.cycles,
                    retaddr=retaddr, tag_region=tag >> 16,
                )
            if desc.restore_scheme is RestoreStubScheme.RUNTIME:
                self._release_stub(machine, retaddr)

        region_index = tag >> 16
        offset = tag & 0xFFFF
        if region_index >= len(desc.regions):
            raise OffsetTableError(
                f"tag word at {retaddr:#x} names region {region_index}; "
                f"image has {len(desc.regions)} regions",
                region=region_index,
            )
        region = desc.region(region_index)
        if offset > region.expanded_size:
            raise BufferOverrunError(
                f"tag word at {retaddr:#x} re-enters region "
                f"{region_index} at slot {offset}, past its "
                f"{region.expanded_size}-word expansion",
                region=region_index,
            )

        hit = (
            region_index in self._materialised
            if desc.strategy is BufferStrategy.DECOMPRESS_ONCE
            else (desc.buffer_caching and self.current_region == region_index)
        )
        if hit:
            self.stats.buffer_hits += 1
            self._charge(machine, desc.cost.buffer_hit_cycles)
            if self._tracer.enabled:
                self._tracer.emit(
                    "buffer.hit", "runtime", ts=machine.cycles,
                    region=region_index,
                )
        else:
            self._fill(machine, region_index)
        # Entry jump at slot 0, then transfer to the buffer start --
        # exactly the paper's step 2/5 of Section 2.3.
        machine.write_word(
            region.base,
            encode(Instruction(Op.BR, ra=REG_ZERO, imm=offset - 1)),
        )
        machine.pc = region.base

    def _release_stub(self, machine: Machine, retaddr: int) -> None:
        stub_addr = retaddr - 1
        slot = (
            stub_addr - self.desc.stub_area_base
        ) // SquashDescriptor.RESTORE_STUB_WORDS
        count = machine.read_word(stub_addr + 2) - 1
        if count < 0:
            raise AssertionError("restore-stub usage count went negative")
        machine.write_word(stub_addr + 2, count)
        if count == 0:
            key = self._slot_key.pop(slot)
            del self._live_stubs[key]
            self._free_slots.append(slot)
            self.stats.stubs_freed += 1
            if self._tracer.enabled:
                self._tracer.emit(
                    "stub.free", "runtime", ts=machine.cycles, slot=slot,
                )

    def _fill(self, machine: Machine, region_index: int) -> None:
        """Decode a region into its area and charge the measured cost.

        Every fill on the decode path is integrity-checked: the offset
        table, codec tables, and stream CRCs once per runtime, plus the
        region's own bit-range CRC before its first decode.  All checks
        are host-side (the modelled decompressor folds them into its
        word fetches), so cycle accounting is identical to the
        unchecked runtime.
        """
        desc = self.desc
        self._verify_image(machine)
        trace = self._tracer.enabled
        if trace:
            if (
                desc.strategy is not BufferStrategy.DECOMPRESS_ONCE
                and self.current_region is not None
                and self.current_region != region_index
            ):
                # The single runtime buffer holds one region at a
                # time: filling it with a new region evicts the old.
                self._tracer.emit(
                    "buffer.evict", "runtime", ts=machine.cycles,
                    region=self.current_region, replaced_by=region_index,
                )
            self._tracer.emit(
                "region.decompress", "runtime", phase="B",
                ts=machine.cycles, region=region_index,
            )
        region = desc.region(region_index)
        if (
            region.base < desc.buffer_base
            or region.base + region.expanded_size
            > desc.buffer_base + desc.buffer_words
        ):
            raise BufferOverrunError(
                f"region {region_index} target [{region.base:#x}, "
                f"{region.base + region.expanded_size:#x}) outside the "
                f"runtime buffer",
                region=region_index,
            )
        codec = self._ensure_codec(machine)

        cached = self._expanded_cache.get(region_index)
        if cached is None:
            bit_offset = machine.read_word(
                desc.offset_table_addr + region_index
            )
            self._check_region_stream(machine, region_index, bit_offset)
            try:
                items, bits = self._decode_region(
                    machine, codec, bit_offset
                )
            except SquashError as exc:
                raise exc.with_context(
                    region=region_index,
                    bit_offset=bit_offset,
                    fingerprint=self._fingerprint_hex(machine),
                )
            words = self._expand(items, region.base)
            if len(words) + 1 != region.expanded_size:
                raise BufferOverrunError(
                    f"region {region_index}: expanded to {len(words) + 1} "
                    f"words, expected {region.expanded_size}",
                    region=region_index,
                    bit_offset=bit_offset,
                    fingerprint=self._fingerprint_hex(machine),
                )
            # Cache the host-side decode (a pure speed optimisation for
            # the simulation: the guest is still charged the full
            # measured decode cost below on every miss).
            self._expanded_cache[region_index] = (words, bits)
        else:
            words, bits = cached
        for index, word in enumerate(words):
            machine.write_word(region.base + 1 + index, word)

        cost = desc.cost
        cycles = (
            cost.decomp_invoke_cycles
            + cost.decomp_per_bit_cycles * bits
            + cost.decomp_per_instr_cycles * len(words)
        )
        self._charge(machine, cycles)
        self.stats.decompressions += 1
        self.stats.bits_decoded += bits
        self.stats.instrs_materialised += len(words)
        if trace:
            self._tracer.emit(
                "region.decompress", "runtime", phase="E",
                ts=machine.cycles, region=region_index,
                bits=bits, words=len(words), cycles=cycles,
            )

        if desc.strategy is BufferStrategy.DECOMPRESS_ONCE:
            self._materialised.add(region_index)
        else:
            self.current_region = region_index

    def _decode_region(
        self, machine: Machine, codec: ProgramCodec, bit_offset: int
    ) -> tuple[tuple, int]:
        """Decode the compressed region at *bit_offset*, going through
        the cross-runtime decode cache when enabled.

        The cache is keyed by (blob digest, bit offset): the digest
        covers the serialised tables *and* the whole compressed stream,
        so two images share an entry only when their compressed bytes
        are identical -- in which case the decoded items are too.  The
        returned bit count always equals what a real decode would have
        measured, so cost charging is unaffected.
        """
        global _REGION_CACHE_HITS, _REGION_CACHE_MISSES
        desc = self.desc
        if not self._region_cache_enabled:
            stream = _MemWords(machine, desc.stream_addr, desc.stream_words)
            items, bits = codec.decode_region(stream, bit_offset)
            return tuple(items), bits
        key = (self._blob_fingerprint(machine), bit_offset)
        cached = _REGION_DECODE_CACHE.get(key)
        if cached is not None:
            items, bits, seal = cached
            if _entry_seal(items, bits) == seal:
                _REGION_DECODE_CACHE.move_to_end(key)
                _REGION_CACHE_HITS += 1
                _METRICS.inc("runtime.decode_cache.hits")
                if self._tracer.enabled:
                    self._tracer.emit(
                        "decode_cache.hit", "runtime",
                        ts=machine.cycles, bit_offset=bit_offset,
                    )
                return items, bits
            # A poisoned entry (mutated in place by another runtime or
            # a fault) is rejected rather than executed: drop it and
            # fall through to a fresh decode from the verified blob.
            del _REGION_DECODE_CACHE[key]
            self.stats.cache_rejects += 1
        _REGION_CACHE_MISSES += 1
        _METRICS.inc("runtime.decode_cache.misses")
        if self._tracer.enabled:
            self._tracer.emit(
                "decode_cache.miss", "runtime",
                ts=machine.cycles, bit_offset=bit_offset,
            )
        if self._warm_decode_cache(machine, codec, key[0]):
            cached = _REGION_DECODE_CACHE.get(key)
            if cached is not None:
                items, bits, seal = cached
                if _entry_seal(items, bits) == seal:
                    _REGION_DECODE_CACHE.move_to_end(key)
                    return items, bits
        stream = _MemWords(machine, desc.stream_addr, desc.stream_words)
        items, bits = codec.decode_region(stream, bit_offset)
        items = tuple(items)
        _REGION_DECODE_CACHE[key] = (items, bits, _entry_seal(items, bits))
        while len(_REGION_DECODE_CACHE) > REGION_CACHE_MAX_ENTRIES:
            _REGION_DECODE_CACHE.popitem(last=False)
        return items, bits

    def _warm_decode_cache(
        self, machine: Machine, codec: ProgramCodec, fingerprint: bytes
    ) -> bool:
        """Batch-decode every region into the cross-runtime cache.

        With the ``vector`` backend the first cache miss pays one
        lane-parallel pass over the whole offset table instead of a
        per-region decode per miss -- every later miss of this blob
        becomes a hit.  Tried once per runtime; any decode failure
        falls back to the per-region path so errors keep their exact
        per-region type, offset, and context attribution.
        """
        if self._batch_warm_tried:
            return False
        self._batch_warm_tried = True
        from repro.compress.codec import resolve_decode_backend
        from repro.compress import vector

        if (
            resolve_decode_backend() != "vector"
            or not vector.HAVE_NUMPY
            or codec.coder != "huffman"
        ):
            return False
        desc = self.desc
        offsets = [
            machine.read_word(desc.offset_table_addr + index)
            for index in range(len(desc.regions))
        ]
        words = list(
            machine.mem[
                desc.stream_addr : desc.stream_addr + desc.stream_words
            ]
        )
        try:
            results = vector.decode_regions(codec, words, offsets)
        except (SquashError, ValueError):
            return False
        for offset, (items, bits) in zip(offsets, results):
            items = tuple(items)
            _REGION_DECODE_CACHE[(fingerprint, offset)] = (
                items,
                bits,
                _entry_seal(items, bits),
            )
        while len(_REGION_DECODE_CACHE) > REGION_CACHE_MAX_ENTRIES:
            _REGION_DECODE_CACHE.popitem(last=False)
        _METRICS.inc("runtime.decode_batch.warms")
        _METRICS.inc("runtime.decode_batch.regions", len(offsets))
        if self._tracer.enabled:
            self._tracer.emit(
                "decode_batch.warm", "runtime",
                ts=machine.cycles, regions=len(offsets),
            )
        return True

    def _blob_fingerprint(self, machine: Machine) -> bytes:
        if self._blob_digest is None:
            desc = self.desc
            mem = machine.mem
            digest = hashlib.sha256()
            digest.update(
                array(
                    "I",
                    mem[desc.table_addr : desc.table_addr + desc.table_words],
                ).tobytes()
            )
            digest.update(
                array(
                    "I",
                    mem[
                        desc.stream_addr : desc.stream_addr
                        + desc.stream_words
                    ],
                ).tobytes()
            )
            self._blob_digest = digest.digest()
        return self._blob_digest

    def _expand(self, items: Sequence[CodecInstr], base: int) -> list[int]:
        """Materialise decoded items, expanding XCALL pseudo-ops into
        the two-instruction sequences of Figure 2."""
        desc = self.desc
        words: list[int] = []
        slot = 1
        for item in items:
            if item.opcode == OP_XCALLD:
                link = item.fields[0]
                disp = from_bits(FieldKind.BDISP, item.fields[1])
                words.append(
                    encode(
                        Instruction(
                            Op.BSR,
                            ra=link,
                            imm=branch_displacement(
                                base + slot, desc.decomp_base + link
                            ),
                        )
                    )
                )
                words.append(
                    encode(Instruction(Op.BR, ra=REG_ZERO, imm=disp))
                )
                slot += 2
            elif item.opcode == OP_XCALLI:
                link, rb = item.fields
                words.append(
                    encode(
                        Instruction(
                            Op.BSR,
                            ra=link,
                            imm=branch_displacement(
                                base + slot, desc.decomp_base + link
                            ),
                        )
                    )
                )
                words.append(
                    encode(Instruction(Op.JSR, ra=REG_ZERO, rb=rb))
                )
                slot += 2
            else:
                words.append(encode(codec_to_instruction(item)))
                slot += 1
        return words

    def _ensure_codec(self, machine: Machine) -> ProgramCodec:
        """Parse the Huffman tables out of image memory, once.

        The serialized table area is CRC-checked before parsing (when
        the image carries integrity metadata) and any parse failure
        surfaces as a :class:`~repro.errors.CodecTableError`.  Images
        with per-context seals have each context table checked first,
        so the error names the damaged context.
        """
        if self._codec is None:
            desc = self.desc
            table = [
                machine.mem[desc.table_addr + index]
                for index in range(desc.table_words)
            ]
            fingerprint = self._fingerprint_hex(machine)
            if desc.integrity is not None:
                check_context_seals(table, desc.integrity, fingerprint)
                check_area_crc(
                    table,
                    desc.integrity.table_crc,
                    "serialized codec tables",
                    CodecTableError,
                    fingerprint,
                )
            try:
                self._codec = ProgramCodec.from_table_words(table)
            except SquashError as exc:
                raise exc.with_context(fingerprint=fingerprint)
            except (ValueError, EOFError) as exc:
                raise CodecTableError(
                    f"unparseable codec tables: {exc}",
                    fingerprint=fingerprint,
                ) from exc
        return self._codec

    # -- integrity ----------------------------------------------------------

    def _fingerprint_hex(self, machine: Machine) -> str:
        """Short hex fingerprint of the blob, for error context."""
        return self._blob_fingerprint(machine).hex()[:12]

    def _verify_image(self, machine: Machine) -> None:
        """Once per runtime: validate the offset table (monotonicity,
        bounds, CRC) and the whole-stream CRC against the descriptor's
        integrity metadata.  Images without metadata still get the
        structural offset-table checks."""
        if self._image_verified:
            return
        self._image_verified = True
        desc = self.desc
        integ = desc.integrity
        fingerprint = self._fingerprint_hex(machine)
        if integ is not None and len(integ.regions) != len(desc.regions):
            raise CorruptBlobError(
                f"integrity metadata covers {len(integ.regions)} regions; "
                f"descriptor has {len(desc.regions)}",
                fingerprint=fingerprint,
            )
        offsets = [
            machine.read_word(desc.offset_table_addr + index)
            for index in range(len(desc.regions))
        ]
        stream_bits = (
            integ.stream_bits if integ is not None
            else desc.stream_words * 32
        )
        check_offset_table(offsets, stream_bits, integ, fingerprint)
        if integ is not None:
            stream = machine.mem[
                desc.stream_addr : desc.stream_addr + desc.stream_words
            ]
            check_area_crc(
                stream,
                integ.stream_crc,
                "compressed stream",
                CorruptBlobError,
                fingerprint,
            )

    def _check_region_stream(
        self, machine: Machine, region_index: int, bit_offset: int
    ) -> None:
        """Before decoding a region: its offset-table entry must match
        the descriptor, and its exact bit range must match its CRC."""
        desc = self.desc
        region = desc.region(region_index)
        if bit_offset != region.bit_offset:
            raise OffsetTableError(
                f"offset table entry {region_index} reads {bit_offset}; "
                f"descriptor says {region.bit_offset}",
                region=region_index,
                bit_offset=bit_offset,
                fingerprint=self._fingerprint_hex(machine),
            )
        integ = desc.integrity
        if integ is None:
            return
        record = integ.regions[region_index]
        if record.end_bit > desc.stream_words * 32:
            raise TruncatedStreamError(
                f"region {region_index} ends at bit {record.end_bit}; "
                f"stream holds only {desc.stream_words * 32} bits",
                region=region_index,
                bit_offset=record.end_bit,
                fingerprint=self._fingerprint_hex(machine),
            )
        stream = _MemWords(machine, desc.stream_addr, desc.stream_words)
        if (
            bit_range_crc(stream, record.start_bit, record.end_bit)
            != record.crc
        ):
            raise CorruptBlobError(
                f"region {region_index} bit range "
                f"[{record.start_bit}, {record.end_bit}) fails its CRC",
                region=region_index,
                bit_offset=bit_offset,
                fingerprint=self._fingerprint_hex(machine),
            )

    def _charge(self, machine: Machine, cycles: int) -> None:
        machine.charge(cycles)
        self.stats.decomp_cycles += cycles
