"""CRC32 integrity metadata over the compressed areas of an image.

A squashed image carries three areas the runtime decompressor trusts
blindly: the serialized codec tables, the merged compressed stream, and
the function offset table.  This module computes (at rewrite time) and
re-checks (at load time and before every first decode of a region) CRC32
checksums over each of them, plus one per region over the exact bit
range the region occupies in the stream -- so a single flipped bit
anywhere in the compressed image is *detected* before the decoder can
materialise wrong instructions into the buffer.

The metadata travels with the :class:`~repro.core.descriptor.
SquashDescriptor` (it is the squashed executable's header) and survives
``save``/``load_squashed`` via the descriptor JSON.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Sequence
from zlib import crc32

from repro.errors import CodecTableError, CorruptBlobError, OffsetTableError

__all__ = [
    "RegionIntegrity",
    "ContextIntegrity",
    "ImageIntegrity",
    "words_crc",
    "bytes_crc",
    "bit_range_crc",
    "blob_integrity",
    "check_offset_table",
    "check_area_crc",
    "check_context_seals",
]


def words_crc(words: Sequence[int]) -> int:
    """CRC32 over a 32-bit word sequence (little-endian byte order)."""
    return crc32(array("I", [w & 0xFFFFFFFF for w in words]).tobytes())


def bytes_crc(data: bytes) -> int:
    """CRC32 over raw bytes (the seal used by on-disk cache entries)."""
    return crc32(data)


def bit_range_crc(words: Sequence[int], start_bit: int, end_bit: int) -> int:
    """CRC32 over the MSB-first bit range ``[start_bit, end_bit)``.

    *words* may be any word-indexable source (a list, or the runtime's
    view of machine memory); a trailing partial byte is left-aligned.
    """
    if not 0 <= start_bit <= end_bit:
        raise ValueError(f"bad bit range [{start_bit}, {end_bit})")
    out = bytearray()
    pos = start_bit
    remaining = end_bit - start_bit
    while remaining >= 8:
        take = min(remaining, 32) & ~7  # whole bytes, at most one word
        out.extend(_read_bits(words, pos, take).to_bytes(take // 8, "big"))
        pos += take
        remaining -= take
    if remaining:
        out.append(_read_bits(words, pos, remaining) << (8 - remaining))
    return crc32(bytes(out))


def _read_bits(words: Sequence[int], pos: int, nbits: int) -> int:
    """Read *nbits* MSB-first at absolute bit position *pos*."""
    value = 0
    while nbits > 0:
        word_index, bit_index = divmod(pos, 32)
        take = min(nbits, 32 - bit_index)
        word = words[word_index]
        value = (value << take) | (
            (word >> (32 - bit_index - take)) & ((1 << take) - 1)
        )
        pos += take
        nbits -= take
    return value


@dataclass
class RegionIntegrity:
    """Checksum of one region's exact bit range in the stream."""

    start_bit: int
    end_bit: int
    crc: int


@dataclass
class ContextIntegrity:
    """Checksum of one context table's bit range in the table area.

    ``kind`` is the stream's :class:`~repro.isa.fields.FieldKind` value
    (stored as an int so the descriptor stays JSON-plain) and ``ctx``
    the context id within that stream; order-0 streams contribute one
    entry with ``ctx`` 0.  A per-context seal lets the verifier name
    *which* table of a context-modeled codec is damaged instead of just
    failing the whole-area CRC.
    """

    kind: int
    ctx: int
    start_bit: int
    end_bit: int
    crc: int


@dataclass
class ImageIntegrity:
    """Checksums over every trusted area of a squashed image."""

    table_crc: int
    stream_crc: int
    offset_table_crc: int
    table_bits: int
    stream_bits: int
    regions: list[RegionIntegrity] = field(default_factory=list)
    #: Per-context seals over the table area (empty for pre-CodecModel
    #: images, which then only get the whole-area ``table_crc`` check).
    contexts: list[ContextIntegrity] = field(default_factory=list)


def blob_integrity(blob) -> ImageIntegrity:
    """Integrity metadata for a :class:`~repro.compress.codec.
    CompressedBlob` (computed once, at rewrite time)."""
    offsets = blob.region_bit_offsets
    regions = []
    for index, start in enumerate(offsets):
        end = (
            offsets[index + 1]
            if index + 1 < len(offsets)
            else blob.stream_bits
        )
        regions.append(
            RegionIntegrity(
                start_bit=start,
                end_bit=end,
                crc=bit_range_crc(blob.stream_words, start, end),
            )
        )
    contexts = [
        ContextIntegrity(
            kind=kind,
            ctx=ctx,
            start_bit=start,
            end_bit=end,
            crc=bit_range_crc(blob.table_words, start, end),
        )
        for kind, ctx, start, end in getattr(blob, "context_spans", ())
    ]
    return ImageIntegrity(
        table_crc=words_crc(blob.table_words),
        stream_crc=words_crc(blob.stream_words),
        offset_table_crc=words_crc(offsets),
        table_bits=blob.table_bits,
        stream_bits=blob.stream_bits,
        regions=regions,
        contexts=contexts,
    )


def check_offset_table(
    offsets: Sequence[int],
    stream_bits: int,
    integrity: ImageIntegrity | None = None,
    fingerprint: str | None = None,
) -> None:
    """Validate the in-image function offset table.

    Offsets must be strictly increasing (every region ends with at
    least a one-bit sentinel) and in ``[0, stream_bits)``; with
    *integrity*, the table must also match its stored CRC.
    """
    previous = -1
    for index, offset in enumerate(offsets):
        if offset <= previous:
            raise OffsetTableError(
                f"offset table not monotonic at entry {index}: "
                f"{offset} after {previous}",
                region=index,
                bit_offset=offset,
                fingerprint=fingerprint,
            )
        if not 0 <= offset < max(stream_bits, 1):
            raise OffsetTableError(
                f"offset table entry {index} = {offset} outside the "
                f"{stream_bits}-bit stream",
                region=index,
                bit_offset=offset,
                fingerprint=fingerprint,
            )
        previous = offset
    if integrity is not None and words_crc(offsets) != integrity.offset_table_crc:
        raise OffsetTableError(
            "offset table CRC mismatch", fingerprint=fingerprint
        )


def check_context_seals(
    table_words: Sequence[int],
    integrity: ImageIntegrity,
    fingerprint: str | None = None,
) -> None:
    """Check every per-context table seal of a CodecModel image.

    Walked *before* the whole-area table CRC so a damaged context is
    named by stream and context id instead of collapsing into an
    anonymous area mismatch.  No-op for pre-CodecModel images (empty
    ``contexts``).
    """
    from repro.isa.fields import FieldKind

    table_bits = len(table_words) * 32
    for record in integrity.contexts:
        try:
            kind_name = FieldKind(record.kind).name
        except ValueError:
            kind_name = f"kind {record.kind}"
        if not 0 <= record.start_bit <= record.end_bit <= table_bits:
            raise CodecTableError(
                f"context table of stream {kind_name} spans bits "
                f"[{record.start_bit}, {record.end_bit}) outside the "
                f"{table_bits}-bit table area",
                context=record.ctx,
                bit_offset=record.start_bit,
                fingerprint=fingerprint,
            )
        actual = bit_range_crc(
            table_words, record.start_bit, record.end_bit
        )
        if actual != record.crc:
            raise CodecTableError(
                f"context table seal mismatch for stream {kind_name}: "
                f"stored {record.crc:#010x}, computed {actual:#010x}",
                context=record.ctx,
                bit_offset=record.start_bit,
                fingerprint=fingerprint,
            )


def check_area_crc(
    words: Sequence[int],
    expected: int,
    what: str,
    error_cls: type = CorruptBlobError,
    fingerprint: str | None = None,
) -> None:
    """Raise *error_cls* unless CRC32(words) equals *expected*."""
    actual = words_crc(words)
    if actual != expected:
        raise error_cls(
            f"{what} CRC mismatch: stored {expected:#010x}, "
            f"computed {actual:#010x}",
            fingerprint=fingerprint,
        )
