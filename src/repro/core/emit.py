"""Stage 4 of the rewriter: region encoding and image emission.

Pass 2 over the classified regions produces the final codec items
(branch displacements resolved against the segment layout), the
program codec compresses them into one blob (Section 3), and the
emitter materialises the image words and the runtime descriptor.
"""

from __future__ import annotations

from repro.compress.codec import CodecConfig, CompressedBlob, ProgramCodec
from repro.compress.streams import (
    CodecInstr,
    OP_XCALLD,
    OP_XCALLI,
    instruction_to_codec,
)
from repro.core.classify import (
    CATEGORY_CALL_CT,
    CATEGORY_CALL_INTRA,
    CATEGORY_CALL_SAFE,
    CATEGORY_ICALL_CT,
    CATEGORY_PLAIN,
    CATEGORY_XCALLD,
    CATEGORY_XCALLI,
    RegionSitePlan,
)
from repro.core.descriptor import (
    CompileTimeStubInfo,
    RegionDescriptor,
    RestoreStubScheme,
    SquashDescriptor,
)
from repro.core.integrity import blob_integrity
from repro.core.layout import SegmentLayout
from repro.isa.encoding import encode
from repro.isa.fields import FieldKind, to_bits
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op, REG_AT, REG_ZERO
from repro.program.image import LoadedImage, Segment
from repro.program.layout import (
    branch_displacement,
    encode_block_words,
    resolve_data_ref,
)
from repro.program.program import Program

__all__ = ["encode_region", "build_blob", "emit_image"]


def encode_region(
    plan: RegionSitePlan,
    prog: Program,
    layout: SegmentLayout,
    entries: dict[str, str],
    region_of: dict[str, int],
) -> list[CodecInstr]:
    """Pass 2: produce the final codec items for one region."""
    region_set = set(plan.region.blocks)
    base = plan.base
    items: list[CodecInstr] = []
    slot = 1

    def resolve_external(label: str) -> int:
        return layout.resolve_code_label(label)

    for position, label in enumerate(plan.region.blocks):
        _, block = prog.find_block(label)
        for index, instr in enumerate(block.instrs):
            category = plan.categories[(label, index)]
            here = base + slot
            is_terminator = index == len(block.instrs) - 1
            if category == CATEGORY_PLAIN and index in block.data_refs:
                resolved = resolve_data_ref(
                    instr, layout.data_addr[block.data_refs[index]]
                )
                items.append(instruction_to_codec(resolved))
                slot += 1
            elif category in (CATEGORY_CALL_SAFE, CATEGORY_CALL_INTRA):
                target_fn = block.call_targets[index]
                entry = entries[target_fn]
                if category == CATEGORY_CALL_INTRA:
                    disp = plan.block_slots[entry] - (slot + 1)
                else:
                    disp = resolve_external(entry) - (here + 1)
                items.append(
                    instruction_to_codec(
                        Instruction(instr.op, ra=instr.ra, imm=disp)
                    )
                )
                slot += 1
            elif category in (CATEGORY_CALL_CT, CATEGORY_ICALL_CT):
                stub_addr = layout.ct_stub_addr(
                    plan.region.index, plan.ct_sites[(label, index)]
                )
                items.append(
                    instruction_to_codec(
                        Instruction(
                            Op.BR,
                            ra=REG_ZERO,
                            imm=branch_displacement(here, stub_addr),
                        )
                    )
                )
                slot += 1
            elif category == CATEGORY_XCALLD:
                target_fn = block.call_targets[index]
                entry = entries[target_fn]
                target = (
                    base + plan.block_slots[entry]
                    if entry in region_set
                    else resolve_external(entry)
                )
                # the expanded br sits at here + 1
                disp = target - (here + 2)
                items.append(
                    CodecInstr(
                        OP_XCALLD,
                        (instr.ra, to_bits(FieldKind.BDISP, disp)),
                    )
                )
                slot += 2
            elif category == CATEGORY_XCALLI:
                items.append(
                    CodecInstr(OP_XCALLI, (instr.ra, instr.rb))
                )
                slot += 2
            elif is_terminator and (
                instr.is_cond_branch or block.ends_in_uncond_branch
            ):
                target_label = block.branch_target
                assert target_label is not None
                if target_label in region_set:
                    disp = plan.block_slots[target_label] - (slot + 1)
                else:
                    disp = resolve_external(target_label) - (here + 1)
                items.append(
                    instruction_to_codec(
                        Instruction(instr.op, ra=instr.ra, imm=disp)
                    )
                )
                slot += 1
            else:
                items.append(instruction_to_codec(instr))
                slot += 1
        if label in plan.trailing_br:
            target_label = block.fallthrough
            assert target_label is not None
            here = base + slot
            if target_label in region_set:
                disp = plan.block_slots[target_label] - (slot + 1)
            else:
                disp = resolve_external(target_label) - (here + 1)
            items.append(
                instruction_to_codec(
                    Instruction(Op.BR, ra=REG_ZERO, imm=disp)
                )
            )
            slot += 1
    assert slot == plan.expanded_size, (slot, plan.expanded_size)
    return items


def build_blob(
    plans: list[RegionSitePlan],
    prog: Program,
    layout: SegmentLayout,
    entries: dict[str, str],
    region_of: dict[str, int],
    codec_config: CodecConfig,
) -> CompressedBlob:
    """Encode every region and compress the merged stream."""
    region_items = [
        encode_region(plan, prog, layout, entries, region_of)
        for plan in plans
    ]
    if region_items:
        _, blob = ProgramCodec.build(region_items, codec_config)
    else:
        blob = CompressedBlob(
            table_words=[],
            stream_words=[],
            region_bit_offsets=[],
            table_bits=0,
            stream_bits=0,
        )
    return blob


def emit_image(
    prog: Program,
    layout: SegmentLayout,
    plans: list[RegionSitePlan],
    blob: CompressedBlob,
    config,
) -> tuple[LoadedImage, SquashDescriptor]:
    """Materialise the squashed image and its runtime descriptor."""
    cost = config.cost
    memory: list[int] = []

    # Text.
    for block, next_label in layout.text_plan:
        memory.extend(
            encode_block_words(
                block,
                layout.text_block_addr[block.label],
                layout.resolve_code_label,
                layout.resolve_func,
                next_label,
                lambda sym: layout.data_addr[sym],
            )
        )
    assert len(memory) == layout.text_words

    # Entry stubs: bsr $at, decomp_entry($at); tag.
    for stub in layout.entry_stubs:
        call = Instruction(
            Op.BSR,
            ra=REG_AT,
            imm=branch_displacement(stub.addr, layout.decomp_base + REG_AT),
        )
        memory.append(encode(call))
        memory.append((stub.region << 16) | stub.offset)

    # Decompressor area (entry points + body; the body's execution is
    # modelled by the runtime service, its space is real).
    memory.extend([0] * layout.decomp_words)

    # Function offset table: per-region bit offsets.
    memory.extend(blob.region_bit_offsets)
    assert layout.offset_table_addr + layout.n_regions == layout.stub_area_base

    # Stub area.
    if config.restore_scheme is RestoreStubScheme.COMPILE_TIME:
        memory.extend(_emit_ct_stubs(prog, layout, plans))
    else:
        memory.extend([0] * layout.stub_area_words)

    # Runtime buffer / region areas.
    memory.extend([0] * layout.buffer_words)

    # Data.
    for obj in prog.data.values():
        for index, word in enumerate(obj.words):
            target = obj.relocs.get(index)
            if target is not None:
                if target in prog.functions:
                    word = layout.resolve_func(target)
                else:
                    word = layout.resolve_code_label(target)
            memory.append(word & 0xFFFFFFFF)

    # Compressed area, last: tables then stream.
    table_addr = layout.compressed_base
    memory.extend(blob.table_words)
    stream_addr = table_addr + len(blob.table_words)
    memory.extend(blob.stream_words)

    base = layout.text_base
    segments = [
        Segment("text", base, layout.text_words),
        Segment(
            "entry_stubs",
            layout.entry_stub_base,
            len(layout.entry_stubs) * cost.entry_stub_words,
        ),
        Segment("decompressor", layout.decomp_base, layout.decomp_words),
        Segment("offset_table", layout.offset_table_addr, layout.n_regions),
        Segment("stub_area", layout.stub_area_base, layout.stub_area_words),
        Segment("runtime_buffer", layout.buffer_base, layout.buffer_words),
        Segment("data", layout.data_base, layout.data_words),
        Segment(
            "compressed",
            layout.compressed_base,
            len(blob.table_words) + len(blob.stream_words),
        ),
    ]

    symbols: dict[str, int] = dict(layout.text_block_addr)
    for name, entry in layout.entries.items():
        if name in prog.functions:
            try:
                symbols[name] = layout.resolve_code_label(entry)
            except KeyError:
                pass
    symbols.update(layout.data_addr)

    image = LoadedImage(
        memory=memory,
        base=base,
        entry_pc=layout.resolve_func(prog.entry),  # type: ignore[arg-type]
        segments=segments,
        symbols=symbols,
        block_heads={
            addr: label for label, addr in layout.text_block_addr.items()
        },
    )

    descriptor = SquashDescriptor(
        strategy=config.strategy,
        restore_scheme=config.restore_scheme,
        cost=cost,
        decomp_base=layout.decomp_base,
        decomp_words=layout.decomp_words,
        offset_table_addr=layout.offset_table_addr,
        table_addr=table_addr,
        table_words=len(blob.table_words),
        stream_addr=stream_addr,
        stream_words=len(blob.stream_words),
        stub_area_base=layout.stub_area_base,
        stub_area_words=layout.stub_area_words,
        stub_capacity=layout.stub_capacity,
        buffer_base=layout.buffer_base,
        buffer_words=layout.buffer_words,
        regions=[
            RegionDescriptor(
                index=plan.region.index,
                bit_offset=blob.region_bit_offsets[plan.region.index],
                expanded_size=plan.expanded_size,
                base=plan.base,
                block_slots=dict(plan.block_slots),
                original_instrs=plan.original_instrs,
            )
            for plan in plans
        ],
        entry_stubs=list(layout.entry_stubs),
        compile_time_stubs=list(layout.ct_stub_infos),
        buffer_caching=config.buffer_caching,
        integrity=blob_integrity(blob),
    )
    return image, descriptor


def _emit_ct_stubs(
    prog: Program,
    layout: SegmentLayout,
    plans: list[RegionSitePlan],
) -> list[int]:
    """Materialise compile-time restore stubs:
    ``call ; bsr $at, decomp ; tag``."""
    words: list[int] = []
    for plan in plans:
        for (label, index), ordinal in sorted(
            plan.ct_sites.items(), key=lambda kv: kv[1]
        ):
            stub_addr = layout.ct_stub_addr(plan.region.index, ordinal)
            _, block = prog.find_block(label)
            instr = block.instrs[index]
            if index in block.call_targets:
                callee_entry = layout.entries[block.call_targets[index]]
                if callee_entry in plan.block_slots:
                    # Callee entry is inside this region: call its
                    # buffer slot (the region is buffered while the
                    # stub runs).
                    target = plan.base + plan.block_slots[callee_entry]
                else:
                    target = layout.resolve_func(block.call_targets[index])
                call = Instruction(
                    instr.op,
                    ra=instr.ra,
                    imm=branch_displacement(stub_addr, target),
                )
            else:  # indirect call
                call = Instruction(Op.JSR, ra=instr.ra, rb=instr.rb)
            decomp_call = Instruction(
                Op.BSR,
                ra=REG_AT,
                imm=branch_displacement(
                    stub_addr + 1, layout.decomp_base + REG_AT
                ),
            )
            # Return offset: the slot after the call site in the buffer.
            return_offset = plan.site_slot(label, index) + 1
            tag = (plan.region.index << 16) | return_offset
            words.extend([encode(call), encode(decomp_call), tag])
            layout.ct_stub_infos.append(
                CompileTimeStubInfo(
                    addr=stub_addr,
                    region=plan.region.index,
                    return_offset=return_offset,
                )
            )
    return words
