"""Offline verification of squashed executables.

``repro verify <prefix>`` (and :func:`repro.core.pipeline.load_squashed`
with ``verify=True``) runs these checks against an image on disk,
without executing it:

1. image file well-formedness (magic, format version, payload CRC);
2. descriptor parse and integrity-metadata presence;
3. serialized codec tables: area CRC and a full parse;
4. function offset table: monotonicity, bounds, CRC, and agreement
   with the descriptor's per-region bit offsets;
5. compressed stream CRC;
6. (deep mode) an off-line decode of every region: per-region bit-range
   CRC, a full Huffman decode to the sentinel, the measured bit count
   against the region's bit range, and the expanded word count against
   the descriptor.

The first fault stops the run and is reported structurally
(:class:`VerifyFault` wraps the :class:`~repro.errors.SquashError`).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

from repro.compress.codec import ProgramCodec
from repro.compress.streams import OP_XCALLD, OP_XCALLI
from repro.core.descriptor import SquashDescriptor
from repro.core.pipeline import _sibling_with_suffix
from repro.core.integrity import (
    bit_range_crc,
    check_area_crc,
    check_context_seals,
    check_offset_table,
)
from repro.errors import (
    CodecTableError,
    CorruptBlobError,
    OffsetTableError,
    SquashError,
    TruncatedStreamError,
)
from repro.program.image import LoadedImage

__all__ = [
    "VerifyFault",
    "VerifyReport",
    "verify_squashed",
    "check_image_integrity",
]


@dataclass
class VerifyFault:
    """One failed check, with the structured error behind it."""

    check: str
    message: str
    error_type: str
    region: int | None = None
    bit_offset: int | None = None

    @classmethod
    def from_error(cls, check: str, exc: SquashError) -> "VerifyFault":
        return cls(
            check=check,
            message=str(exc),
            error_type=type(exc).__name__,
            region=getattr(exc, "region", None),
            bit_offset=getattr(exc, "bit_offset", None),
        )


@dataclass
class VerifyReport:
    """Outcome of a verification run: passed checks plus the first
    fault (if any)."""

    prefix: str
    passed: list[str] = field(default_factory=list)
    fault: VerifyFault | None = None

    @property
    def ok(self) -> bool:
        return self.fault is None

    def render(self) -> str:
        lines = [f"verify {self.prefix}: {'OK' if self.ok else 'FAULT'}"]
        for check in self.passed:
            lines.append(f"  pass  {check}")
        if self.fault is not None:
            lines.append(f"  FAIL  {self.fault.check}")
            lines.append(f"        {self.fault.error_type}: "
                         f"{self.fault.message}")
        return "\n".join(lines)


def _image_words(image: LoadedImage, addr: int, count: int) -> list[int]:
    start = addr - image.base
    if start < 0 or start + count > len(image.memory):
        raise CorruptBlobError(
            f"area [{addr:#x}, {addr + count:#x}) outside the image"
        )
    return image.memory[start : start + count]


def check_image_integrity(
    image: LoadedImage, descriptor: SquashDescriptor
) -> None:
    """The fast (no-decode) integrity checks over a loaded image:
    codec-table CRC, offset-table structure/CRC, stream CRC.  Raises a
    :class:`~repro.errors.SquashError` subclass on the first fault;
    images without integrity metadata get structural checks only."""
    integ = descriptor.integrity
    table = _image_words(
        image, descriptor.table_addr, descriptor.table_words
    )
    if integ is not None:
        check_context_seals(table, integ)
        check_area_crc(
            table, integ.table_crc, "serialized codec tables",
            CodecTableError,
        )
    offsets = _image_words(
        image, descriptor.offset_table_addr, len(descriptor.regions)
    )
    stream_bits = (
        integ.stream_bits if integ is not None
        else descriptor.stream_words * 32
    )
    check_offset_table(offsets, stream_bits, integ)
    for region in descriptor.regions:
        if offsets[region.index] != region.bit_offset:
            raise OffsetTableError(
                f"offset table entry {region.index} reads "
                f"{offsets[region.index]}; descriptor says "
                f"{region.bit_offset}",
                region=region.index,
                bit_offset=offsets[region.index],
            )
    stream = _image_words(
        image, descriptor.stream_addr, descriptor.stream_words
    )
    if integ is not None:
        check_area_crc(
            stream, integ.stream_crc, "compressed stream",
            CorruptBlobError,
        )


def _decode_all_regions(
    image: LoadedImage, descriptor: SquashDescriptor
) -> None:
    """Deep check: decode every region off-line and cross-check the
    measured bit counts and expanded sizes against the descriptor."""
    integ = descriptor.integrity
    table = _image_words(
        image, descriptor.table_addr, descriptor.table_words
    )
    try:
        codec = ProgramCodec.from_table_words(table)
    except SquashError:
        raise
    except (ValueError, EOFError) as exc:
        raise CodecTableError(f"unparseable codec tables: {exc}") from exc
    stream = _image_words(
        image, descriptor.stream_addr, descriptor.stream_words
    )
    for region in descriptor.regions:
        if integ is not None:
            record = integ.regions[region.index]
            if record.end_bit > len(stream) * 32:
                raise TruncatedStreamError(
                    f"region {region.index} ends at bit {record.end_bit}; "
                    f"stream holds only {len(stream) * 32} bits",
                    region=region.index,
                    bit_offset=record.end_bit,
                )
            if (
                bit_range_crc(stream, record.start_bit, record.end_bit)
                != record.crc
            ):
                raise CorruptBlobError(
                    f"region {region.index} bit range "
                    f"[{record.start_bit}, {record.end_bit}) fails its CRC",
                    region=region.index,
                    bit_offset=record.start_bit,
                )
        try:
            items, bits = codec.decode_region(stream, region.bit_offset)
        except SquashError as exc:
            raise exc.with_context(
                region=region.index, bit_offset=region.bit_offset
            )
        if integ is not None:
            record = integ.regions[region.index]
            if region.bit_offset + bits != record.end_bit:
                raise CorruptBlobError(
                    f"region {region.index} decoded {bits} bits; its bit "
                    f"range holds {record.end_bit - record.start_bit}",
                    region=region.index,
                    bit_offset=region.bit_offset,
                )
        expanded = 1 + sum(
            2 if item.opcode in (OP_XCALLD, OP_XCALLI) else 1
            for item in items
        )
        if expanded != region.expanded_size:
            raise CorruptBlobError(
                f"region {region.index} expands to {expanded} words; "
                f"descriptor says {region.expanded_size}",
                region=region.index,
                bit_offset=region.bit_offset,
            )


def verify_squashed(prefix, deep: bool = True) -> VerifyReport:
    """Verify a ``save``d squashed executable; never raises -- faults
    come back in the report."""
    prefix = pathlib.Path(prefix)
    report = VerifyReport(prefix=str(prefix))

    def run(check: str, thunk) -> bool:
        try:
            thunk()
        except SquashError as exc:
            report.fault = VerifyFault.from_error(check, exc)
            return False
        except Exception as exc:  # malformed beyond our taxonomy
            report.fault = VerifyFault(
                check=check, message=str(exc), error_type=type(exc).__name__
            )
            return False
        report.passed.append(check)
        return True

    state: dict = {}

    def load_img():
        from repro.program.imagefile import load_image

        state["image"] = load_image(_sibling_with_suffix(prefix, ".img"))

    def load_desc():
        import json

        from repro.core.descriptor import descriptor_from_dict

        state["descriptor"] = descriptor_from_dict(
            json.loads(_sibling_with_suffix(prefix, ".json").read_text())
        )

    def integrity_present():
        if state["descriptor"].integrity is None:
            raise CorruptBlobError(
                "descriptor carries no integrity metadata"
            )

    if not run("image-file", load_img):
        return report
    if not run("descriptor", load_desc):
        return report
    if not run("integrity-metadata", integrity_present):
        return report
    if not run(
        "checksums",
        lambda: check_image_integrity(state["image"], state["descriptor"]),
    ):
        return report
    if deep:
        run(
            "region-decode",
            lambda: _decode_all_regions(state["image"], state["descriptor"]),
        )
    return report
