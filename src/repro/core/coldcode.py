"""Cold-code identification (Section 5 of the paper).

Given a threshold θ ∈ [0, 1], find the largest execution frequency N
such that the blocks with frequency ≤ N together account for at most
θ · tot_instr_ct dynamic instructions; every block with frequency ≤ N
is cold.  θ = 0 marks exactly the never-executed blocks (their weight
is zero); θ = 1 marks everything.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vm.profiler import Profile


@dataclass
class ColdCodeResult:
    """The cold set plus the quantities behind it."""

    cold: set[str]
    #: The frequency cutoff N.
    cutoff: int
    #: Dynamic instructions attributable to the cold set.
    cold_weight: int
    #: θ · tot_instr_ct, the budget the cold weight must not exceed.
    budget: float


def identify_cold_blocks(profile: Profile, theta: float) -> ColdCodeResult:
    """Identify cold blocks at threshold *theta*.

    Blocks are considered in increasing order of execution frequency;
    whole frequency classes are admitted while the cumulative weight
    stays within θ · tot_instr_ct.
    """
    if not 0.0 <= theta <= 1.0:
        raise ValueError(f"theta must be in [0, 1], got {theta}")
    budget = theta * profile.tot_instr_ct

    by_freq: dict[int, list[str]] = {}
    for label, count in profile.counts.items():
        by_freq.setdefault(count, []).append(label)

    cutoff = -1
    cold_weight = 0
    cold: set[str] = set()
    for freq in sorted(by_freq):
        class_weight = sum(
            freq * profile.sizes[label] for label in by_freq[freq]
        )
        # Tolerance: θ·tot is a float; admit a class that hits the
        # budget exactly up to rounding.
        if cold_weight + class_weight > budget * (1 + 1e-12) + 1e-9:
            break
        cold_weight += class_weight
        cutoff = freq
        cold.update(by_freq[freq])
    return ColdCodeResult(
        cold=cold, cutoff=cutoff, cold_weight=cold_weight, budget=budget
    )


@dataclass
class ColdCodeStats:
    """Figure 4's quantities for one program at one θ."""

    theta: float
    total_code: int
    cold_code: int
    compressible_code: int

    @property
    def cold_fraction(self) -> float:
        return self.cold_code / self.total_code if self.total_code else 0.0

    @property
    def compressible_fraction(self) -> float:
        return (
            self.compressible_code / self.total_code if self.total_code else 0.0
        )


def cold_code_stats(
    profile: Profile,
    theta: float,
    compressible: set[str],
) -> ColdCodeStats:
    """Static-size fractions of cold and compressible code (Figure 4)."""
    result = identify_cold_blocks(profile, theta)
    total = sum(profile.sizes.values())
    cold_size = sum(profile.sizes[label] for label in result.cold)
    comp_size = sum(
        profile.sizes[label] for label in compressible if label in profile.sizes
    )
    return ColdCodeStats(
        theta=theta,
        total_code=total,
        cold_code=cold_size,
        compressible_code=comp_size,
    )
