"""Stage 2 of the rewriter: buffer safety and call-site classification.

Every instruction inside a compressed region is classified (Section 2
/ Figure 2): calls to buffer-safe functions stay ordinary calls, calls
wholly inside the region become buffer-relative, and everything else
becomes the CreateStub expansion (runtime scheme) or a branch to a
pre-built stub (compile-time scheme).

How a call site is treated depends on the buffer strategy and the
restore-stub scheme; both are plugin points here.  A
:class:`BufferPolicy` / :class:`RestorePolicy` pair is looked up in
:data:`BUFFER_STRATEGIES` / :data:`RESTORE_SCHEMES` by the enum value
carried in the config, so a new strategy registers its policy instead
of adding branches to the classifier.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.buffersafe import buffer_safe_functions
from repro.core.descriptor import BufferStrategy, RestoreStubScheme
from repro.core.plan import RegionPlanResult, RewriteInfo
from repro.core.regions import Region, RegionContext
from repro.pipeline.registry import Registry
from repro.program.blocks import BasicBlock
from repro.program.layout import needs_fallthrough_br
from repro.program.program import Program

__all__ = [
    "BUFFER_STRATEGIES",
    "RESTORE_SCHEMES",
    "BufferPolicy",
    "RestorePolicy",
    "ClassifiedSites",
    "RegionSitePlan",
    "classify_sites",
    "CATEGORY_PLAIN",
    "CATEGORY_CALL_SAFE",
    "CATEGORY_CALL_INTRA",
    "CATEGORY_CALL_CT",
    "CATEGORY_XCALLD",
    "CATEGORY_ICALL_CT",
    "CATEGORY_XCALLI",
]

# Call-site categories.
CATEGORY_PLAIN = "plain"
CATEGORY_CALL_SAFE = "call_safe"
CATEGORY_CALL_INTRA = "call_intra"
CATEGORY_CALL_CT = "call_ct"
CATEGORY_XCALLD = "xcalld"
CATEGORY_ICALL_CT = "icall_ct"
CATEGORY_XCALLI = "xcalli"

#: Two-slot expansions (CreateStub, Figure 2).
_TWO_SLOT = (CATEGORY_XCALLD, CATEGORY_XCALLI)


@dataclass(frozen=True)
class BufferPolicy:
    """Classification consequences of a buffer-management strategy."""

    strategy: BufferStrategy
    #: Decompressed code is never overwritten, so no call from a
    #: region ever needs protection (DECOMPRESS_ONCE).
    calls_never_protected: bool = False


@dataclass(frozen=True)
class RestorePolicy:
    """Classification consequences of a restore-stub scheme."""

    scheme: RestoreStubScheme
    #: Protected calls expand to the two-instruction CreateStub pseudo
    #: ops (runtime scheme) rather than branching to pre-built stubs.
    runtime_expansion: bool = True


BUFFER_STRATEGIES: Registry[BufferPolicy] = Registry("buffer strategy")
for _strategy in BufferStrategy:
    BUFFER_STRATEGIES.register(
        _strategy.value,
        BufferPolicy(
            strategy=_strategy,
            calls_never_protected=(
                _strategy is BufferStrategy.DECOMPRESS_ONCE
            ),
        ),
    )

RESTORE_SCHEMES: Registry[RestorePolicy] = Registry("restore scheme")
for _scheme in RestoreStubScheme:
    RESTORE_SCHEMES.register(
        _scheme.value,
        RestorePolicy(
            scheme=_scheme,
            runtime_expansion=(_scheme is RestoreStubScheme.RUNTIME),
        ),
    )


def classify_site(
    prog: Program,
    ctx: RegionContext,
    block: BasicBlock,
    index: int,
    instr,
    region_set: set[str],
    safe: set[str],
    all_indirect_safe: bool,
    restore: RestorePolicy,
    buffer: BufferPolicy,
) -> str:
    """Category of one instruction inside a compressed region."""
    if index in block.call_targets:
        target = block.call_targets[index]
        if buffer.calls_never_protected:
            # DECOMPRESS_ONCE never overwrites decompressed code, so
            # every call can be ordinary: intra-region calls are
            # area-relative, the rest go to the callee (or its entry
            # stub) directly.
            if ctx.entries[target] in region_set:
                return CATEGORY_CALL_INTRA
            return CATEGORY_CALL_SAFE
        if target in safe:
            return CATEGORY_CALL_SAFE
        target_fn = prog.functions[target]
        if all(b in region_set for b in target_fn.blocks):
            # The callee lives wholly inside this region: its return
            # address stays valid because every escape from the region
            # during its execution is itself call-protected.
            return CATEGORY_CALL_INTRA
        return (
            CATEGORY_XCALLD
            if restore.runtime_expansion
            else CATEGORY_CALL_CT
        )
    if instr.is_indirect_call:
        if buffer.calls_never_protected or all_indirect_safe:
            return CATEGORY_PLAIN
        return (
            CATEGORY_XCALLI
            if restore.runtime_expansion
            else CATEGORY_ICALL_CT
        )
    return CATEGORY_PLAIN


@dataclass
class RegionSitePlan:
    """Pass-1 layout of one region: slots and call-site categories."""

    region: Region
    block_slots: dict[str, int]
    #: (block label, index) -> category
    categories: dict[tuple[str, int], str]
    #: (block label, index) -> compile-time stub ordinal
    ct_sites: dict[tuple[str, int], int]
    #: Blocks needing a trailing fallthrough br inside the buffer.
    trailing_br: set[str]
    expanded_size: int
    original_instrs: int
    base: int = 0  # assigned by SegmentLayout

    @classmethod
    def build(
        cls,
        prog: Program,
        region: Region,
        ctx: RegionContext,
        safe: set[str],
        all_indirect_safe: bool,
        config,
        info: RewriteInfo,
    ) -> "RegionSitePlan":
        restore = RESTORE_SCHEMES.get(config.restore_scheme.value)
        buffer = BUFFER_STRATEGIES.get(config.strategy.value)
        region_set = set(region.blocks)
        block_slots: dict[str, int] = {}
        categories: dict[tuple[str, int], str] = {}
        ct_sites: dict[tuple[str, int], int] = {}
        trailing: set[str] = set()
        slot = 1  # slot 0 is the entry jump
        original = 0

        for position, label in enumerate(region.blocks):
            _, block = prog.find_block(label)
            block_slots[label] = slot
            original += block.size
            for index, instr in enumerate(block.instrs):
                category = classify_site(
                    prog, ctx, block, index, instr, region_set, safe,
                    all_indirect_safe, restore, buffer,
                )
                categories[(label, index)] = category
                if category in (CATEGORY_CALL_CT, CATEGORY_ICALL_CT):
                    ct_sites[(label, index)] = len(ct_sites)
                if category in _TWO_SLOT:
                    info.xcall_sites += 1
                    slot += 2
                else:
                    slot += 1
                if category == CATEGORY_CALL_INTRA:
                    info.intra_region_calls += 1
                elif category == CATEGORY_CALL_SAFE:
                    info.safe_calls += 1
            next_label = (
                region.blocks[position + 1]
                if position + 1 < len(region.blocks)
                else None
            )
            if needs_fallthrough_br(block, next_label):
                trailing.add(label)
                slot += 1

        return cls(
            region=region,
            block_slots=block_slots,
            categories=categories,
            ct_sites=ct_sites,
            trailing_br=trailing,
            expanded_size=slot,
            original_instrs=original,
        )

    def site_slot(self, label: str, index: int) -> int:
        """Buffer slot of instruction *index* of block *label*."""
        slot = self.block_slots[label]
        for position in range(index):
            category = self.categories[(label, position)]
            slot += 2 if category in _TWO_SLOT else 1
        return slot


@dataclass
class ClassifiedSites:
    """The ``classify`` artifact: per-region site plans plus the
    buffer-safe analysis feeding them (Section 6.1)."""

    plans: list[RegionSitePlan]
    safe_functions: set[str]
    all_indirect_safe: bool


def classify_sites(
    plan: RegionPlanResult,
    config,
    info: RewriteInfo,
) -> ClassifiedSites:
    """Buffer safety (Section 6.1) + per-region classification."""
    prog = plan.program
    safe = buffer_safe_functions(prog, plan.compressed)
    info.safe_functions = safe
    all_indirect_safe = (
        bool(prog.address_taken) and prog.address_taken <= safe
    )
    plans = [
        RegionSitePlan.build(
            prog, region, plan.ctx, safe, all_indirect_safe, config, info
        )
        for region in plan.regions
    ]
    return ClassifiedSites(
        plans=plans,
        safe_functions=safe,
        all_indirect_safe=all_indirect_safe,
    )
