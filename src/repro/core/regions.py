"""Compressible-region formation and packing (Section 4 of the paper).

A region is an arbitrary set of compressible basic blocks that is
compressed and decompressed as a unit; the runtime buffer holds at most
one region at a time.  Finding the optimal partition is NP-hard (the
paper reduces PARTITION to it), so squash uses the paper's heuristic:

1. depth-first search from compressible blocks, bounded so the tree has
   at most K instructions (expanded size, since each external call adds
   one instruction in the buffer) and uses blocks of a single function;
2. a profitability test: compress the tree only if the entry stubs it
   needs cost less than the instructions compression saves,
   ``E < (1 - γ) I``;
3. greedy pair packing: repeatedly merge the pair of regions with the
   greatest savings (entry stubs, restore stubs, and fall-through jumps
   between them) that still fits the bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.costmodel import CostModel
from repro.program.cfg import block_predecessors, block_successors
from repro.program.program import Program


@dataclass
class Region:
    """One compressible region: an ordered list of block labels.

    The block order is the layout order inside the runtime buffer.
    """

    index: int
    blocks: list[str] = field(default_factory=list)

    def __contains__(self, label: str) -> bool:
        return label in self._set

    @property
    def _set(self) -> set[str]:
        return set(self.blocks)

    def size(self, sizes: dict[str, int]) -> int:
        """Total instruction count of the region's blocks."""
        return sum(sizes[label] for label in self.blocks)


@dataclass
class RegionContext:
    """Pre-computed program facts shared by formation and packing."""

    program: Program
    sizes: dict[str, int]
    preds: dict[str, list[str]]
    block_func: dict[str, str]
    #: function name -> entry block label
    entries: dict[str, str]
    #: block label -> number of call instructions in the block
    calls_in: dict[str, int]
    #: entry label -> labels of blocks containing direct calls to it.
    call_sites_of: dict[str, set[str]]
    #: labels that always need an entry stub when compressed: the
    #: program entry, address-taken function entries (indirect-call
    #: targets), and (added by the rewriter) data-referenced labels.
    forced_entries: set[str]

    @classmethod
    def build(cls, program: Program) -> "RegionContext":
        sizes = {b.label: b.size for _, b in program.all_blocks()}
        entries = {
            f.name: f.entry for f in program.functions.values() if f.entry
        }
        calls_in = {
            b.label: len(b.call_sites()) for _, b in program.all_blocks()
        }
        call_sites: dict[str, set[str]] = {}
        for function in program.functions.values():
            for block in function.blocks.values():
                for target in block.call_targets.values():
                    call_sites.setdefault(entries[target], set()).add(
                        block.label
                    )
        forced: set[str] = set()
        for name in program.address_taken:
            forced.add(entries[name])
        if program.entry is not None:
            forced.add(entries[program.entry])
        return cls(
            program=program,
            sizes=sizes,
            preds=block_predecessors(program),
            block_func=program.block_function(),
            entries=entries,
            calls_in=calls_in,
            call_sites_of=call_sites,
            forced_entries=forced,
        )


def entry_blocks(
    region_blocks: set[str], ctx: RegionContext
) -> set[str]:
    """Blocks of the region that need an entry stub (the set Y).

    A block needs an entry stub if control can enter it from outside
    the region: an intra-procedural edge or a direct call from a block
    not in the region, an indirect call (address-taken entries), a data
    reference, or being the program entry.  A helper whose every caller
    is packed into the same region needs no stub -- this is where
    Section 4's packing savings come from.
    """
    entries: set[str] = set()
    for label in region_blocks:
        if label in ctx.forced_entries:
            entries.add(label)
            continue
        sources = set(ctx.preds.get(label, ()))
        sources |= ctx.call_sites_of.get(label, set())
        if any(source not in region_blocks for source in sources):
            entries.add(label)
    return entries


def _expanded_size(blocks: set[str], ctx: RegionContext) -> int:
    """Upper bound on the region's footprint in the runtime buffer:
    block instructions, one extra slot per call (the decompressor's
    expansion), and the entry-jump slot at the buffer start."""
    return (
        sum(ctx.sizes[b] for b in blocks)
        + sum(ctx.calls_in[b] for b in blocks)
        + 1
    )


def form_regions(
    program: Program,
    compressible: set[str],
    cost: CostModel,
    ctx: RegionContext | None = None,
) -> list[Region]:
    """Initial region formation by bounded depth-first search.

    Trees are grown within one function from each unvisited
    compressible block (in layout order), stopping before the expanded
    size would exceed the buffer bound; unprofitable trees mark their
    root so no search restarts there, but their blocks stay available
    to other trees.
    """
    ctx = ctx or RegionContext.build(program)
    bound = cost.buffer_bound_instrs
    assigned: set[str] = set()
    dead_roots: set[str] = set()
    regions: list[Region] = []

    progress = True
    while progress:
        progress = False
        for function in program.functions.values():
            for root_label in function.blocks:
                if (
                    root_label not in compressible
                    or root_label in assigned
                    or root_label in dead_roots
                ):
                    continue
                tree = _grow_tree(
                    root_label, function.name, compressible, assigned,
                    ctx, bound,
                )
                if not tree:
                    dead_roots.add(root_label)
                    continue
                stub_instrs = cost.entry_stub_words * len(
                    entry_blocks(set(tree), ctx)
                )
                saved = (1.0 - cost.gamma) * sum(
                    ctx.sizes[b] for b in tree
                )
                if stub_instrs < saved:
                    regions.append(Region(index=len(regions), blocks=tree))
                    assigned.update(tree)
                    progress = True
                else:
                    dead_roots.add(root_label)
    return regions


def _grow_tree(
    root: str,
    function_name: str,
    compressible: set[str],
    assigned: set[str],
    ctx: RegionContext,
    bound: int,
) -> list[str]:
    """Depth-first tree of compressible blocks of one function, kept
    within the expanded-size bound.  Returns blocks in DFS order."""
    tree: list[str] = []
    tree_set: set[str] = set()
    used = 1  # the entry-jump slot
    stack = [root]
    while stack:
        label = stack.pop()
        if (
            label in tree_set
            or label in assigned
            or label not in compressible
            or ctx.block_func[label] != function_name
        ):
            continue
        extra = ctx.sizes[label] + ctx.calls_in[label]
        if used + extra > bound:
            continue
        used += extra
        tree.append(label)
        tree_set.add(label)
        _, block = ctx.program.find_block(label)
        for succ in reversed(block_successors(ctx.program, block)):
            stack.append(succ)
    return tree


def form_regions_whole_function(
    program: Program,
    compressible: set[str],
    cost: CostModel,
    ctx: RegionContext | None = None,
) -> list[Region]:
    """Alternative region construction (the paper's future work):
    prefer whole cold functions as regions.

    A function whose compressible blocks all fit the buffer bound
    becomes one region (fewer entry stubs: only real entry points need
    them); anything that does not fit falls back to the bounded DFS of
    :func:`form_regions`.  Used by the region-strategy ablation.
    """
    ctx = ctx or RegionContext.build(program)
    bound = cost.buffer_bound_instrs
    regions: list[Region] = []
    leftovers: set[str] = set()

    for function in program.functions.values():
        members = [
            label for label in function.blocks if label in compressible
        ]
        if not members:
            continue
        member_set = set(members)
        if (
            member_set == set(function.blocks)
            and _expanded_size(member_set, ctx) <= bound
        ):
            stub_instrs = cost.entry_stub_words * len(
                entry_blocks(member_set, ctx)
            )
            saved = (1.0 - cost.gamma) * sum(
                ctx.sizes[b] for b in members
            )
            if stub_instrs < saved:
                regions.append(
                    Region(index=len(regions), blocks=list(members))
                )
                continue
        leftovers.update(members)

    for region in form_regions(program, leftovers, cost, ctx):
        region.index = len(regions)
        regions.append(region)
    return regions


def pack_regions(
    program: Program,
    regions: list[Region],
    cost: CostModel,
    ctx: RegionContext | None = None,
) -> list[Region]:
    """Greedy pair packing (Section 4).

    Merging {R, R'} saves: an entry stub for every block whose external
    predecessors all lie in the other region; a restore stub for every
    call between the two regions; and a jump for every fall-through
    edge between them.  Pairs are merged best-first while the merged
    expanded size stays within the buffer bound.
    """
    ctx = ctx or RegionContext.build(program)
    bound = cost.buffer_bound_instrs
    pool: dict[int, Region] = {r.index: r for r in regions}
    owner: dict[str, int] = {}
    for region in regions:
        for label in region.blocks:
            owner[label] = region.index

    def current_max_expanded() -> int:
        return max(
            (_expanded_size(set(r.blocks), ctx) for r in pool.values()),
            default=0,
        )

    def merge_savings(a: Region, b: Region) -> int:
        a_set, b_set = set(a.blocks), set(b.blocks)
        both = a_set | b_set
        saved = 0
        # Merging may enlarge the largest region, and the runtime
        # buffer must hold it (the max term of Section 4's cost).
        saved -= max(
            0, _expanded_size(both, ctx) - current_max_expanded()
        )
        # One function-offset-table word is reclaimed per merge.
        saved += 1
        # Entry stubs no longer needed after the merge.
        before = len(entry_blocks(a_set, ctx)) + len(entry_blocks(b_set, ctx))
        after = len(entry_blocks(both, ctx))
        saved += cost.entry_stub_words * (before - after)
        # Restore stubs for calls between the two regions.
        for label in a.blocks:
            _, block = ctx.program.find_block(label)
            for target in block.call_targets.values():
                if ctx.entries[target] in b_set:
                    saved += cost.restore_stub_words
        for label in b.blocks:
            _, block = ctx.program.find_block(label)
            for target in block.call_targets.values():
                if ctx.entries[target] in a_set:
                    saved += cost.restore_stub_words
        # Fall-through jumps between the regions.
        for label in a.blocks:
            _, block = ctx.program.find_block(label)
            if block.fallthrough in b_set:
                saved += 1
        for label in b.blocks:
            _, block = ctx.program.find_block(label)
            if block.fallthrough in a_set:
                saved += 1
        return saved

    def adjacent_pairs() -> set[tuple[int, int]]:
        pairs: set[tuple[int, int]] = set()
        for region in pool.values():
            for label in region.blocks:
                _, block = ctx.program.find_block(label)
                neighbours = list(block_successors(ctx.program, block))
                neighbours.extend(
                    ctx.entries[t] for t in block.call_targets.values()
                )
                for succ in neighbours:
                    other = owner.get(succ)
                    if other is not None and other != region.index:
                        pairs.add(
                            (min(region.index, other), max(region.index, other))
                        )
        return pairs

    while True:
        best: tuple[int, int] | None = None
        best_gain = 0
        for ia, ib in adjacent_pairs():
            a, b = pool[ia], pool[ib]
            merged = set(a.blocks) | set(b.blocks)
            if _expanded_size(merged, ctx) > bound:
                continue
            gain = merge_savings(a, b)
            if gain > best_gain:
                best, best_gain = (ia, ib), gain
        if best is None:
            break
        ia, ib = best
        a, b = pool.pop(ia), pool.pop(ib)
        merged_region = Region(index=ia, blocks=a.blocks + b.blocks)
        pool[ia] = merged_region
        for label in merged_region.blocks:
            owner[label] = ia

    packed = sorted(pool.values(), key=lambda r: r.index)
    for new_index, region in enumerate(packed):
        region.index = new_index
    return packed
