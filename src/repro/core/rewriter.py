"""The squash binary rewriter (Section 2 of the paper).

Takes a (squeezed) program and its execution profile and produces the
squashed image:

* never-compressed code, with every reference into compressed code
  redirected to entry stubs;
* entry stubs (2 words: a call to the decompressor plus the tag word
  carrying the region index and buffer offset, Section 2.3);
* the decompressor area with its 32 per-register entry points;
* the function offset table (one word per region: the region's bit
  offset in the compressed stream);
* the runtime stub area (reference-counted restore stubs, or the
  compile-time stubs under that scheme);
* the runtime buffer (or per-region areas under DECOMPRESS_ONCE);
* data; and, last, the compressed area (serialised Huffman tables plus
  the merged codeword stream).

Call sites inside compressed code are classified: calls to buffer-safe
functions stay ordinary calls; calls to functions wholly inside the
same region become buffer-relative calls; all other calls become the
two-instruction CreateStub expansion of Figure 2 (pseudo-op XCALLD /
XCALLI in the compressed stream) or, under the compile-time scheme, a
branch to a pre-built restore stub.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compress.codec import CodecConfig, CompressedBlob, ProgramCodec
from repro.compress.streams import (
    CodecInstr,
    OP_XCALLD,
    OP_XCALLI,
    instruction_to_codec,
)
from repro.core.buffersafe import buffer_safe_functions
from repro.core.coldcode import identify_cold_blocks
from repro.core.costmodel import CostModel
from repro.core.descriptor import (
    BufferStrategy,
    CompileTimeStubInfo,
    EntryStubInfo,
    RegionDescriptor,
    RestoreStubScheme,
    SquashDescriptor,
)
from repro.core.integrity import blob_integrity
from repro.core.regions import (
    Region,
    RegionContext,
    entry_blocks,
    form_regions,
    form_regions_whole_function,
    pack_regions,
)
from repro.core.unswitch import UnswitchResult, unswitch_cold_tables
from repro.isa.encoding import encode
from repro.isa.fields import FieldKind, to_bits
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op, REG_AT, REG_ZERO
from repro.program.blocks import BasicBlock
from repro.program.image import LoadedImage, Segment
from repro.program.layout import (
    TEXT_BASE,
    branch_displacement,
    encode_block_words,
    needs_fallthrough_br,
    resolve_data_ref,
)
from repro.program.program import Program
from repro.vm.profiler import Profile


@dataclass
class RewriteConfig:
    """Knobs of the rewriter (a subset of SquashConfig)."""

    theta: float = 0.0
    cost: CostModel = field(default_factory=CostModel)
    strategy: BufferStrategy = BufferStrategy.OVERWRITE
    restore_scheme: RestoreStubScheme = RestoreStubScheme.RUNTIME
    codec: CodecConfig = field(default_factory=CodecConfig)
    pack: bool = True
    unswitch: bool = True
    buffer_caching: bool = True
    #: "dfs" (the paper's bounded depth-first search) or
    #: "whole_function" (the future-work alternative).
    region_strategy: str = "dfs"
    text_base: int = TEXT_BASE


@dataclass
class RewriteInfo:
    """Measurements taken during rewriting (feeds the experiments)."""

    cold: set[str] = field(default_factory=set)
    compressible: set[str] = field(default_factory=set)
    compressed_blocks: set[str] = field(default_factory=set)
    regions: list[Region] = field(default_factory=list)
    safe_functions: set[str] = field(default_factory=set)
    unswitch: UnswitchResult = field(default_factory=UnswitchResult)
    entry_stub_count: int = 0
    xcall_sites: int = 0
    intra_region_calls: int = 0
    safe_calls: int = 0
    compressed_original_instrs: int = 0
    never_compressed_words: int = 0
    jump_table_words: int = 0
    blob: CompressedBlob | None = None

    @property
    def gamma_measured(self) -> float:
        """Measured compression factor: compressed words / original
        instruction words (tables included)."""
        if not self.compressed_original_instrs or self.blob is None:
            return 1.0
        return self.blob.total_words / self.compressed_original_instrs


# Call-site categories.
_PLAIN = "plain"
_CALL_SAFE = "call_safe"
_CALL_INTRA = "call_intra"
_CALL_CT = "call_ct"
_XCALLD = "xcalld"
_ICALL_CT = "icall_ct"
_XCALLI = "xcalli"


def rewrite(
    program: Program,
    profile: Profile,
    config: RewriteConfig | None = None,
) -> tuple[LoadedImage, SquashDescriptor, RewriteInfo]:
    """Squash *program* guided by *profile*; returns the new image, the
    runtime descriptor, and rewrite measurements."""
    config = config or RewriteConfig()
    cost = config.cost
    prog = program.copy()
    prof = Profile(
        counts=dict(profile.counts),
        sizes=dict(profile.sizes),
        tot_instr_ct=profile.tot_instr_ct,
    )
    info = RewriteInfo()

    # -- 1. cold code (Section 5) -----------------------------------------
    cold = set(identify_cold_blocks(prof, config.theta).cold)
    info.cold = set(cold)

    # -- 2. unswitching / exclusions (Sections 2.2, 6.2) -------------------
    excluded: set[str] = set()
    if config.unswitch:
        info.unswitch = unswitch_cold_tables(prog, cold, prof)
        excluded |= info.unswitch.excluded
    else:
        for _, block in prog.all_blocks():
            if block.jump_table is not None:
                table = prog.data[block.jump_table.data_symbol]
                excluded.add(block.label)
                excluded.update(table.relocs.values())

    for function in prog.functions.values():
        if function.calls_setjmp:
            excluded.update(function.blocks)
        if any(
            block.ends_in_indirect_jump and block.jump_table is None
            for block in function.blocks.values()
        ):
            # Computed goto with unknown targets: exclude the function.
            excluded.update(function.blocks)
        if config.strategy is BufferStrategy.NO_CALLS:
            for block in function.blocks.values():
                if block.has_call:
                    excluded.add(block.label)

    compressible = cold - excluded
    info.compressible = set(compressible)

    # -- 3. regions (Section 4) ---------------------------------------------
    ctx = RegionContext.build(prog)
    entries = ctx.entries
    data_ref_labels = _data_referenced_labels(prog, entries)
    ctx.forced_entries |= data_ref_labels

    if config.region_strategy == "whole_function":
        regions = form_regions_whole_function(prog, compressible, cost, ctx)
    elif config.region_strategy == "dfs":
        regions = form_regions(prog, compressible, cost, ctx)
    else:
        raise ValueError(
            f"unknown region strategy {config.region_strategy!r}"
        )
    if config.pack:
        regions = pack_regions(prog, regions, cost, ctx)
    info.regions = regions
    compressed: set[str] = set()
    for region in regions:
        compressed.update(region.blocks)
    info.compressed_blocks = compressed
    region_of: dict[str, int] = {}
    for region in regions:
        for label in region.blocks:
            region_of[label] = region.index

    # -- 4. buffer safety (Section 6.1) --------------------------------------
    safe = buffer_safe_functions(prog, compressed)
    info.safe_functions = safe
    all_indirect_safe = bool(prog.address_taken) and prog.address_taken <= safe

    # -- 5. classify call sites; plan region layouts --------------------------
    plans = [
        _RegionPlan.build(
            prog, region, ctx, safe, all_indirect_safe, config, info
        )
        for region in regions
    ]

    # -- 6. segment layout -----------------------------------------------------
    layout = _SegmentLayout.build(
        prog, compressed, plans, regions, ctx, config, data_ref_labels
    )
    info.entry_stub_count = len(layout.entry_stubs)
    info.never_compressed_words = layout.text_words

    # -- 7. encode regions ------------------------------------------------------
    region_items = [
        plan.encode(prog, layout, entries, region_of)
        for plan in plans
    ]
    info.compressed_original_instrs = sum(
        plan.original_instrs for plan in plans
    )
    if region_items:
        _, blob = ProgramCodec.build(region_items, config.codec)
    else:
        blob = CompressedBlob(
            table_words=[],
            stream_words=[],
            region_bit_offsets=[],
            table_bits=0,
            stream_bits=0,
        )
    info.blob = blob
    info.jump_table_words = sum(
        obj.size for obj in prog.data.values() if obj.is_jump_table
    )

    # -- 8. emit the image -------------------------------------------------------
    image, descriptor = _emit(
        prog, layout, plans, blob, config, cost
    )
    return image, descriptor, info


def _data_referenced_labels(
    program: Program, entries: dict[str, str]
) -> set[str]:
    """Block labels reachable through data relocations (jump tables and
    function-pointer tables)."""
    labels: set[str] = set()
    for obj in program.data.values():
        for target in obj.relocs.values():
            if target in program.functions:
                labels.add(entries[target])
            else:
                labels.add(target)
    return labels


@dataclass
class _Site:
    """One classified instruction inside a region."""

    category: str
    block: str
    index: int
    slot: int
    #: COMPILE_TIME stub ordinal for *_CT categories.
    ct_index: int | None = None


@dataclass
class _RegionPlan:
    """Pass-1 layout of one region: slots and call-site categories."""

    region: Region
    block_slots: dict[str, int]
    #: (block label, index) -> category
    categories: dict[tuple[str, int], str]
    #: (block label, index) -> compile-time stub ordinal
    ct_sites: dict[tuple[str, int], int]
    #: Blocks needing a trailing fallthrough br inside the buffer.
    trailing_br: set[str]
    expanded_size: int
    original_instrs: int
    base: int = 0  # assigned by _SegmentLayout

    @classmethod
    def build(
        cls,
        prog: Program,
        region: Region,
        ctx: RegionContext,
        safe: set[str],
        all_indirect_safe: bool,
        config: RewriteConfig,
        info: RewriteInfo,
    ) -> "_RegionPlan":
        region_set = set(region.blocks)
        block_slots: dict[str, int] = {}
        categories: dict[tuple[str, int], str] = {}
        ct_sites: dict[tuple[str, int], int] = {}
        trailing: set[str] = set()
        slot = 1  # slot 0 is the entry jump
        original = 0
        runtime_scheme = config.restore_scheme is RestoreStubScheme.RUNTIME
        once = config.strategy is BufferStrategy.DECOMPRESS_ONCE

        for position, label in enumerate(region.blocks):
            _, block = prog.find_block(label)
            block_slots[label] = slot
            original += block.size
            for index, instr in enumerate(block.instrs):
                category = _classify(
                    prog, ctx, block, index, instr, region_set, safe,
                    all_indirect_safe, runtime_scheme, once,
                )
                categories[(label, index)] = category
                if category in (_CALL_CT, _ICALL_CT):
                    ct_sites[(label, index)] = len(ct_sites)
                if category in (_XCALLD, _XCALLI):
                    info.xcall_sites += 1
                    slot += 2
                else:
                    slot += 1
                if category == _CALL_INTRA:
                    info.intra_region_calls += 1
                elif category == _CALL_SAFE:
                    info.safe_calls += 1
            next_label = (
                region.blocks[position + 1]
                if position + 1 < len(region.blocks)
                else None
            )
            if needs_fallthrough_br(block, next_label):
                trailing.add(label)
                slot += 1

        return cls(
            region=region,
            block_slots=block_slots,
            categories=categories,
            ct_sites=ct_sites,
            trailing_br=trailing,
            expanded_size=slot,
            original_instrs=original,
        )

    def encode(
        self,
        prog: Program,
        layout: "_SegmentLayout",
        entries: dict[str, str],
        region_of: dict[str, int],
    ) -> list[CodecInstr]:
        """Pass 2: produce the final codec items for this region."""
        region_set = set(self.region.blocks)
        base = self.base
        items: list[CodecInstr] = []
        slot = 1

        def resolve_external(label: str) -> int:
            return layout.resolve_code_label(label)

        for position, label in enumerate(self.region.blocks):
            _, block = prog.find_block(label)
            for index, instr in enumerate(block.instrs):
                category = self.categories[(label, index)]
                here = base + slot
                is_terminator = index == len(block.instrs) - 1
                if category == _PLAIN and index in block.data_refs:
                    resolved = resolve_data_ref(
                        instr, layout.data_addr[block.data_refs[index]]
                    )
                    items.append(instruction_to_codec(resolved))
                    slot += 1
                elif category in (_CALL_SAFE, _CALL_INTRA):
                    target_fn = block.call_targets[index]
                    entry = entries[target_fn]
                    if category == _CALL_INTRA:
                        disp = self.block_slots[entry] - (slot + 1)
                    else:
                        disp = resolve_external(entry) - (here + 1)
                    items.append(
                        instruction_to_codec(
                            Instruction(instr.op, ra=instr.ra, imm=disp)
                        )
                    )
                    slot += 1
                elif category in (_CALL_CT, _ICALL_CT):
                    stub_addr = layout.ct_stub_addr(
                        self.region.index, self.ct_sites[(label, index)]
                    )
                    items.append(
                        instruction_to_codec(
                            Instruction(
                                Op.BR,
                                ra=REG_ZERO,
                                imm=branch_displacement(here, stub_addr),
                            )
                        )
                    )
                    slot += 1
                elif category == _XCALLD:
                    target_fn = block.call_targets[index]
                    entry = entries[target_fn]
                    target = (
                        base + self.block_slots[entry]
                        if entry in region_set
                        else resolve_external(entry)
                    )
                    # the expanded br sits at here + 1
                    disp = target - (here + 2)
                    items.append(
                        CodecInstr(
                            OP_XCALLD,
                            (instr.ra, to_bits(FieldKind.BDISP, disp)),
                        )
                    )
                    slot += 2
                elif category == _XCALLI:
                    items.append(
                        CodecInstr(OP_XCALLI, (instr.ra, instr.rb))
                    )
                    slot += 2
                elif is_terminator and (
                    instr.is_cond_branch or block.ends_in_uncond_branch
                ):
                    target_label = block.branch_target
                    assert target_label is not None
                    if target_label in region_set:
                        disp = self.block_slots[target_label] - (slot + 1)
                    else:
                        disp = resolve_external(target_label) - (here + 1)
                    items.append(
                        instruction_to_codec(
                            Instruction(instr.op, ra=instr.ra, imm=disp)
                        )
                    )
                    slot += 1
                else:
                    items.append(instruction_to_codec(instr))
                    slot += 1
            if label in self.trailing_br:
                target_label = block.fallthrough
                assert target_label is not None
                here = base + slot
                if target_label in region_set:
                    disp = self.block_slots[target_label] - (slot + 1)
                else:
                    disp = resolve_external(target_label) - (here + 1)
                items.append(
                    instruction_to_codec(
                        Instruction(Op.BR, ra=REG_ZERO, imm=disp)
                    )
                )
                slot += 1
        assert slot == self.expanded_size, (slot, self.expanded_size)
        return items


def _classify(
    prog: Program,
    ctx: RegionContext,
    block: BasicBlock,
    index: int,
    instr: Instruction,
    region_set: set[str],
    safe: set[str],
    all_indirect_safe: bool,
    runtime_scheme: bool,
    once: bool,
) -> str:
    """Category of one instruction inside a compressed region."""
    if index in block.call_targets:
        target = block.call_targets[index]
        if once:
            # DECOMPRESS_ONCE never overwrites decompressed code, so
            # every call can be ordinary: intra-region calls are
            # area-relative, the rest go to the callee (or its entry
            # stub) directly.
            if ctx.entries[target] in region_set:
                return _CALL_INTRA
            return _CALL_SAFE
        if target in safe:
            return _CALL_SAFE
        target_fn = prog.functions[target]
        if all(b in region_set for b in target_fn.blocks):
            # The callee lives wholly inside this region: its return
            # address stays valid because every escape from the region
            # during its execution is itself call-protected.
            return _CALL_INTRA
        return _XCALLD if runtime_scheme else _CALL_CT
    if instr.is_indirect_call:
        if once or all_indirect_safe:
            return _PLAIN
        return _XCALLI if runtime_scheme else _ICALL_CT
    return _PLAIN


@dataclass
class _SegmentLayout:
    """Addresses of every segment and every stub."""

    text_base: int
    text_words: int
    text_block_addr: dict[str, int]
    entry_stub_base: int
    entry_stubs: list[EntryStubInfo]
    entry_stub_of: dict[str, int]  # label -> stub addr
    decomp_base: int
    decomp_words: int
    offset_table_addr: int
    n_regions: int
    stub_area_base: int
    stub_area_words: int
    stub_capacity: int
    ct_stub_bases: dict[tuple[int, int], int]
    ct_stub_infos: list[CompileTimeStubInfo]
    buffer_base: int
    buffer_words: int
    data_base: int
    data_addr: dict[str, int]
    data_words: int
    compressed_base: int
    entries: dict[str, str]
    text_plan: list[tuple[BasicBlock, str | None]]
    region_bases: dict[int, int]

    @classmethod
    def build(
        cls,
        prog: Program,
        compressed: set[str],
        plans: list["_RegionPlan"],
        regions: list[Region],
        ctx: RegionContext,
        config: RewriteConfig,
        data_ref_labels: set[str],
    ) -> "_SegmentLayout":
        cost = config.cost
        # Text plan: remaining (never-compressed) blocks per function.
        text_plan: list[tuple[BasicBlock, str | None]] = []
        for function in prog.functions.values():
            remaining = [
                b for b in function.block_order() if b.label not in compressed
            ]
            for position, block in enumerate(remaining):
                next_label = (
                    remaining[position + 1].label
                    if position + 1 < len(remaining)
                    else None
                )
                text_plan.append((block, next_label))

        addr = config.text_base
        text_block_addr: dict[str, int] = {}
        for block, next_label in text_plan:
            text_block_addr[block.label] = addr
            addr += block.size
            if needs_fallthrough_br(block, next_label):
                addr += 1
        text_words = addr - config.text_base

        # Entry stubs: per region, blocks with external entries, in slot
        # order.
        entry_stub_base = addr
        entry_stubs: list[EntryStubInfo] = []
        entry_stub_of: dict[str, int] = {}
        for plan in plans:
            region_set = set(plan.region.blocks)
            needing = entry_blocks(region_set, ctx)
            for label in sorted(needing, key=lambda l: plan.block_slots[l]):
                stub_addr = (
                    entry_stub_base
                    + len(entry_stubs) * cost.entry_stub_words
                )
                entry_stubs.append(
                    EntryStubInfo(
                        label=label,
                        region=plan.region.index,
                        offset=plan.block_slots[label],
                        addr=stub_addr,
                    )
                )
                entry_stub_of[label] = stub_addr
        addr = entry_stub_base + len(entry_stubs) * cost.entry_stub_words

        # Decompressor (entry points at decomp_base + r).
        decomp_base = addr
        decomp_words = max(cost.decompressor_words, 64)
        addr += decomp_words

        # Function offset table.
        offset_table_addr = addr
        addr += len(regions)

        # Stub area.
        stub_area_base = addr
        ct_stub_bases: dict[tuple[int, int], int] = {}
        ct_stub_infos: list[CompileTimeStubInfo] = []
        if config.restore_scheme is RestoreStubScheme.COMPILE_TIME:
            cursor = stub_area_base
            for plan in plans:
                for site_key in sorted(
                    plan.ct_sites, key=plan.ct_sites.get
                ):
                    ordinal = plan.ct_sites[site_key]
                    ct_stub_bases[(plan.region.index, ordinal)] = cursor
                    cursor += SquashDescriptor.CT_STUB_WORDS
            stub_area_words = cursor - stub_area_base
            stub_capacity = 0
        else:
            stub_capacity = cost.stub_area_capacity
            stub_area_words = (
                stub_capacity * SquashDescriptor.RESTORE_STUB_WORDS
            )
        addr = stub_area_base + stub_area_words

        # Runtime buffer (or per-region areas).
        buffer_base = addr
        region_bases: dict[int, int] = {}
        if config.strategy is BufferStrategy.DECOMPRESS_ONCE:
            cursor = buffer_base
            for plan in plans:
                region_bases[plan.region.index] = cursor
                plan.base = cursor
                cursor += plan.expanded_size
            buffer_words = cursor - buffer_base
        else:
            buffer_words = max(
                (plan.expanded_size for plan in plans), default=0
            )
            for plan in plans:
                region_bases[plan.region.index] = buffer_base
                plan.base = buffer_base
        addr = buffer_base + buffer_words

        # Data.
        data_base = addr
        data_addr: dict[str, int] = {}
        for obj in prog.data.values():
            data_addr[obj.name] = addr
            addr += obj.size
        data_words = addr - data_base

        compressed_base = addr

        return cls(
            text_base=config.text_base,
            text_words=text_words,
            text_block_addr=text_block_addr,
            entry_stub_base=entry_stub_base,
            entry_stubs=entry_stubs,
            entry_stub_of=entry_stub_of,
            decomp_base=decomp_base,
            decomp_words=decomp_words,
            offset_table_addr=offset_table_addr,
            n_regions=len(regions),
            stub_area_base=stub_area_base,
            stub_area_words=stub_area_words,
            stub_capacity=stub_capacity,
            ct_stub_bases=ct_stub_bases,
            ct_stub_infos=ct_stub_infos,
            buffer_base=buffer_base,
            buffer_words=buffer_words,
            data_base=data_base,
            data_addr=data_addr,
            data_words=data_words,
            compressed_base=compressed_base,
            entries=ctx.entries,
            text_plan=text_plan,
            region_bases=region_bases,
        )

    def resolve_code_label(self, label: str) -> int:
        """Final address of a block: its text address, or its entry
        stub if it was compressed."""
        addr = self.text_block_addr.get(label)
        if addr is not None:
            return addr
        stub = self.entry_stub_of.get(label)
        if stub is None:
            raise KeyError(
                f"compressed block {label!r} is referenced but has no "
                f"entry stub"
            )
        return stub

    def resolve_func(self, name: str) -> int:
        return self.resolve_code_label(self.entries[name])

    def ct_stub_addr(self, region_index: int, ordinal: int) -> int:
        return self.ct_stub_bases[(region_index, ordinal)]


def _emit(
    prog: Program,
    layout: _SegmentLayout,
    plans: list[_RegionPlan],
    blob: CompressedBlob,
    config: RewriteConfig,
    cost: CostModel,
) -> tuple[LoadedImage, SquashDescriptor]:
    memory: list[int] = []

    # Text.
    for block, next_label in layout.text_plan:
        memory.extend(
            encode_block_words(
                block,
                layout.text_block_addr[block.label],
                layout.resolve_code_label,
                layout.resolve_func,
                next_label,
                lambda sym: layout.data_addr[sym],
            )
        )
    assert len(memory) == layout.text_words

    # Entry stubs: bsr $at, decomp_entry($at); tag.
    for stub in layout.entry_stubs:
        call = Instruction(
            Op.BSR,
            ra=REG_AT,
            imm=branch_displacement(stub.addr, layout.decomp_base + REG_AT),
        )
        memory.append(encode(call))
        memory.append((stub.region << 16) | stub.offset)

    # Decompressor area (entry points + body; the body's execution is
    # modelled by the runtime service, its space is real).
    memory.extend([0] * layout.decomp_words)

    # Function offset table: per-region bit offsets.
    memory.extend(blob.region_bit_offsets)
    assert layout.offset_table_addr + layout.n_regions == layout.stub_area_base

    # Stub area.
    if config.restore_scheme is RestoreStubScheme.COMPILE_TIME:
        memory.extend(
            _emit_ct_stubs(prog, layout, plans)
        )
    else:
        memory.extend([0] * layout.stub_area_words)

    # Runtime buffer / region areas.
    memory.extend([0] * layout.buffer_words)

    # Data.
    for obj in prog.data.values():
        for index, word in enumerate(obj.words):
            target = obj.relocs.get(index)
            if target is not None:
                if target in prog.functions:
                    word = layout.resolve_func(target)
                else:
                    word = layout.resolve_code_label(target)
            memory.append(word & 0xFFFFFFFF)

    # Compressed area, last: tables then stream.
    table_addr = layout.compressed_base
    memory.extend(blob.table_words)
    stream_addr = table_addr + len(blob.table_words)
    memory.extend(blob.stream_words)

    base = layout.text_base
    segments = [
        Segment("text", base, layout.text_words),
        Segment(
            "entry_stubs",
            layout.entry_stub_base,
            len(layout.entry_stubs) * cost.entry_stub_words,
        ),
        Segment("decompressor", layout.decomp_base, layout.decomp_words),
        Segment("offset_table", layout.offset_table_addr, layout.n_regions),
        Segment("stub_area", layout.stub_area_base, layout.stub_area_words),
        Segment("runtime_buffer", layout.buffer_base, layout.buffer_words),
        Segment("data", layout.data_base, layout.data_words),
        Segment(
            "compressed",
            layout.compressed_base,
            len(blob.table_words) + len(blob.stream_words),
        ),
    ]

    symbols: dict[str, int] = dict(layout.text_block_addr)
    for name, entry in layout.entries.items():
        if name in prog.functions:
            try:
                symbols[name] = layout.resolve_code_label(entry)
            except KeyError:
                pass
    symbols.update(layout.data_addr)

    image = LoadedImage(
        memory=memory,
        base=base,
        entry_pc=layout.resolve_func(prog.entry),  # type: ignore[arg-type]
        segments=segments,
        symbols=symbols,
        block_heads={
            addr: label for label, addr in layout.text_block_addr.items()
        },
    )

    descriptor = SquashDescriptor(
        strategy=config.strategy,
        restore_scheme=config.restore_scheme,
        cost=cost,
        decomp_base=layout.decomp_base,
        decomp_words=layout.decomp_words,
        offset_table_addr=layout.offset_table_addr,
        table_addr=table_addr,
        table_words=len(blob.table_words),
        stream_addr=stream_addr,
        stream_words=len(blob.stream_words),
        stub_area_base=layout.stub_area_base,
        stub_area_words=layout.stub_area_words,
        stub_capacity=layout.stub_capacity,
        buffer_base=layout.buffer_base,
        buffer_words=layout.buffer_words,
        regions=[
            RegionDescriptor(
                index=plan.region.index,
                bit_offset=blob.region_bit_offsets[plan.region.index],
                expanded_size=plan.expanded_size,
                base=plan.base,
                block_slots=dict(plan.block_slots),
                original_instrs=plan.original_instrs,
            )
            for plan in plans
        ],
        entry_stubs=list(layout.entry_stubs),
        compile_time_stubs=list(layout.ct_stub_infos),
        buffer_caching=config.buffer_caching,
        integrity=blob_integrity(blob),
    )
    return image, descriptor


def _emit_ct_stubs(
    prog: Program,
    layout: _SegmentLayout,
    plans: list[_RegionPlan],
) -> list[int]:
    """Materialise compile-time restore stubs:
    ``call ; bsr $at, decomp ; tag``."""
    words: list[int] = []
    for plan in plans:
        for (label, index), ordinal in sorted(
            plan.ct_sites.items(), key=lambda kv: kv[1]
        ):
            stub_addr = layout.ct_stub_addr(plan.region.index, ordinal)
            _, block = prog.find_block(label)
            instr = block.instrs[index]
            if index in block.call_targets:
                callee_entry = layout.entries[block.call_targets[index]]
                if callee_entry in plan.block_slots:
                    # Callee entry is inside this region: call its
                    # buffer slot (the region is buffered while the
                    # stub runs).
                    target = plan.base + plan.block_slots[callee_entry]
                else:
                    target = layout.resolve_func(block.call_targets[index])
                call = Instruction(
                    instr.op,
                    ra=instr.ra,
                    imm=branch_displacement(stub_addr, target),
                )
            else:  # indirect call
                call = Instruction(Op.JSR, ra=instr.ra, rb=instr.rb)
            decomp_call = Instruction(
                Op.BSR,
                ra=REG_AT,
                imm=branch_displacement(
                    stub_addr + 1, layout.decomp_base + REG_AT
                ),
            )
            # Return offset: the slot after the call site in the buffer.
            return_offset = _site_slot(plan, label, index) + 1
            tag = (plan.region.index << 16) | return_offset
            words.extend([encode(call), encode(decomp_call), tag])
            layout.ct_stub_infos.append(
                CompileTimeStubInfo(
                    addr=stub_addr,
                    region=plan.region.index,
                    return_offset=return_offset,
                )
            )
    return words


def _site_slot(plan: _RegionPlan, label: str, index: int) -> int:
    """Buffer slot of instruction *index* of block *label*."""
    slot = plan.block_slots[label]
    for position in range(index):
        category = plan.categories[(label, position)]
        slot += 2 if category in (_XCALLD, _XCALLI) else 1
    return slot
