"""The squash binary rewriter (Section 2 of the paper) — thin shim.

The monolithic rewriter now lives as four cohesive stage modules run
by the :class:`~repro.pipeline.manager.PassManager`:

* :mod:`repro.core.plan` — cold code, exclusions, region formation
  (Sections 4-5) and the :data:`~repro.core.plan.REGION_STRATEGIES`
  plugin registry;
* :mod:`repro.core.classify` — buffer safety and call-site
  classification (Sections 2, 6.1) with buffer-strategy /
  restore-scheme policies as plugins;
* :mod:`repro.core.layout` — segment and stub addressing;
* :mod:`repro.core.emit` — region encoding, program coding
  (Section 3), and image emission.

:func:`rewrite` keeps the historical one-call interface — it runs the
stage DAG and returns ``(image, descriptor, info)`` exactly as before.
``RewriteConfig`` is an alias of
:class:`~repro.core.config.SquashConfig` (one source of truth for
every knob) and :class:`RewriteInfo` is re-exported from the plan
stage.
"""

from __future__ import annotations

from repro.core.config import RewriteConfig, SquashConfig
from repro.core.descriptor import SquashDescriptor
from repro.core.plan import RewriteInfo
from repro.pipeline.manager import StageReport
from repro.program.image import LoadedImage
from repro.program.program import Program
from repro.vm.profiler import Profile

__all__ = ["RewriteConfig", "RewriteInfo", "rewrite"]


def rewrite(
    program: Program,
    profile: Profile,
    config: RewriteConfig | None = None,
    report: StageReport | None = None,
) -> tuple[LoadedImage, SquashDescriptor, RewriteInfo]:
    """Squash *program* guided by *profile*; returns the new image, the
    runtime descriptor, and rewrite measurements.

    Pass a :class:`~repro.pipeline.manager.StageReport` as *report* to
    collect per-stage wall time and counters.
    """
    from repro.pipeline.stages import run_squash_pipeline

    config = config or SquashConfig()
    emitted, stage_report, _ = run_squash_pipeline(
        program, profile, config
    )
    if report is not None:
        report.stages.extend(stage_report.stages)
    return emitted.image, emitted.descriptor, emitted.info
