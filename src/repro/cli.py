"""Command-line interface: regenerate any of the paper's experiments.

Usage::

    python -m repro table1
    python -m repro fig6 --scale 0.5
    python -m repro fig7b --names adpcm gsm
    python -m repro squash gsm --theta 0.01 --run
    python -m repro squash gsm --save /tmp/gsm
    python -m repro squash gsm --explain
    python -m repro stages --names adpcm gsm
    python -m repro verify /tmp/gsm
    python -m repro trace /tmp/gsm --out /tmp/gsm.trace.json
    python -m repro trace gsm --theta 0.01
    python -m repro metrics gsm
    python -m repro faultsweep --names adpcm --faults 500 --seed 1
    python -m repro chaossweep --names adpcm --faults 60 --seed 1
    python -m repro store stats
    python -m repro store gc
    python -m repro store verify
    python -m repro storechaos --names adpcm --scale 0.2 --seed 1
    python -m repro serve --idle-exit 5
    python -m repro submit squash --names gsm --theta 0.01 --wait 60
    python -m repro jobs
    python -m repro servechaos --scale 0.2 --seed 1
    python -m repro all

Every command goes through the stable facade (:mod:`repro.api`); the
figure sweeps that the facade models (`fig6`, `fig7a`, `fig7b`) call
:func:`repro.api.sweep`, `squash`/`stages`/`trace`/`metrics` call
:func:`repro.api.squash_benchmark`, and `verify` calls
:func:`repro.api.verify`.  The serving trio (`serve`, `submit`,
`jobs`) runs the async job layer of :mod:`repro.service` over the
filesystem spool; `servechaos` storms it.
"""

from __future__ import annotations

import argparse
import sys

from repro import api
from repro.analysis import ascii_table
from repro.analysis.experiments import (
    FIG3_BOUNDS,
    FIG3_THETAS,
    FIG6_THETAS,
    FIG7_THETAS,
    baseline_run,
    buffer_safe_stats,
    compression_ratio_stats,
    fig3_rows,
    fig4_rows,
    restore_stub_stats,
    squashed_run,
)
from repro.analysis.stats import percent
from repro.api import SquashConfig, SweepSpec, squash_benchmark
from repro.workloads.mediabench import MEDIABENCH


def _cmd_table1(args) -> None:
    from repro.analysis.experiments import table1_rows

    rows = table1_rows(names=args.names, scale=args.scale)
    print(
        ascii_table(
            ["program", "input", "squeeze", "reduction", "paper input",
             "paper squeeze"],
            [
                [r.name, r.input_size, r.squeeze_size,
                 percent(r.reduction), r.paper_input, r.paper_squeeze]
                for r in rows
            ],
            title=f"Table 1 (scale={args.scale})",
        )
    )


def _cmd_fig3(args) -> None:
    rows = fig3_rows(
        names=args.names, scale=args.scale,
        bounds=FIG3_BOUNDS, thetas=FIG3_THETAS,
    )
    print(
        ascii_table(
            ["K (bytes)", "theta (paper)", "relative size"],
            [
                [r.bound_bytes, r.theta_paper, f"{r.relative_size:.4f}"]
                for r in rows
            ],
            title=f"Figure 3 (scale={args.scale})",
        )
    )


def _cmd_fig4(args) -> None:
    rows = fig4_rows(names=args.names, scale=args.scale)
    print(
        ascii_table(
            ["theta (paper)", "theta (ours)", "cold", "compressible"],
            [
                [r.theta_paper, r.theta_ours,
                 percent(r.cold_fraction), percent(r.compressible_fraction)]
                for r in rows
            ],
            title=f"Figure 4 (geo-mean over {len(args.names)} programs)",
        )
    )


def _cmd_fig6(args) -> None:
    rows = api.sweep(
        SweepSpec(names=args.names, scale=args.scale, kind="size")
    )
    print(
        ascii_table(
            ["program", "theta (paper)", "theta (ours)", "reduction"],
            [
                [r.name, r.theta_paper, r.theta_ours, percent(r.reduction)]
                for r in rows
            ],
            title=f"Figure 6 (scale={args.scale})",
        )
    )


def _cmd_fig7a(args) -> None:
    rows = api.sweep(
        SweepSpec(
            names=args.names, scale=args.scale,
            thetas=FIG7_THETAS, kind="size",
        )
    )
    print(
        ascii_table(
            ["program", "theta (paper)", "reduction"],
            [[r.name, r.theta_paper, percent(r.reduction)] for r in rows],
            title=f"Figure 7(a) (scale={args.scale})",
        )
    )


def _cmd_fig7b(args) -> None:
    rows = api.sweep(
        SweepSpec(names=args.names, scale=args.scale, kind="time")
    )
    print(
        ascii_table(
            ["program", "theta (paper)", "relative time"],
            [
                [r.name, r.theta_paper, f"{r.relative_time:.3f}x"]
                for r in rows
            ],
            title=f"Figure 7(b) (scale={args.scale})",
        )
    )


def _cmd_stubs(args) -> None:
    rows = restore_stub_stats(args.names, scale=args.scale, theta_paper=1e-4)
    print(
        ascii_table(
            ["program", "compile-time fraction", "max live", "created"],
            [
                [r.name, percent(r.compile_time_fraction),
                 r.max_live_stubs, r.stubs_created]
                for r in rows
            ],
            title="Restore stubs (Section 2.2)",
        )
    )


def _cmd_ratio(args) -> None:
    rows = compression_ratio_stats(args.names, scale=args.scale)
    print(
        ascii_table(
            ["program", "compressed/original", "stream only"],
            [
                [r.name, percent(r.ratio), percent(r.stream_ratio)]
                for r in rows
            ],
            title="Compression factor at θ=1 (Section 3)",
        )
    )


def _cmd_safe(args) -> None:
    rows = buffer_safe_stats(args.names, scale=args.scale)
    print(
        ascii_table(
            ["program", "safe functions", "safe call sites"],
            [
                [r.name, percent(r.safe_function_fraction),
                 percent(r.safe_call_fraction)]
                for r in rows
            ],
            title="Buffer-safe analysis (Section 6.1)",
        )
    )


def _squash_config(args) -> SquashConfig:
    return SquashConfig(
        theta=args.theta, codec_variant=args.variant
    ).with_buffer_bound(args.bound)


def _cmd_squash(args) -> None:
    name = args.names[0]
    config = _squash_config(args)
    result = squash_benchmark(name, args.scale, config)
    fp = result.footprint
    print(f"{name} at theta={args.theta}, K={args.bound} bytes:")
    print(f"  baseline {result.baseline_words} -> {fp.total} words "
          f"({percent(result.reduction)} reduction)")
    print(f"  regions {len(result.info.regions)}, "
          f"entry stubs {result.info.entry_stub_count}, "
          f"xcall sites {result.info.xcall_sites}, "
          f"gamma {result.info.gamma_measured:.2f}")
    if args.save:
        image_path, meta_path = result.save(args.save)
        print(f"  saved {image_path} + {meta_path}")
    if args.run:
        base = baseline_run(name, args.scale)
        run = squashed_run(name, args.scale, config)
        ok = run.output == base.output
        print(f"  timing run: {run.cycles / base.cycles:.3f}x relative "
              f"time, outputs {'match' if ok else 'DIVERGE'}")
    if args.explain and result.stage_report is not None:
        print()
        print(result.stage_report.render())
    if args.explain:
        _print_codec_contexts(result)


def _print_codec_contexts(result) -> None:
    """Per-context table stats of a squashed image (``--explain``)."""
    from repro.isa.fields import FieldKind

    integrity = result.descriptor.integrity
    contexts = integrity.contexts if integrity is not None else []
    if not contexts:
        return
    print()
    rows = []
    for record in contexts:
        try:
            kind_name = FieldKind(record.kind).name
        except ValueError:
            kind_name = str(record.kind)
        rows.append([
            kind_name, record.ctx,
            record.end_bit - record.start_bit,
            f"{record.crc & 0xFFFFFFFF:#010x}",
        ])
    print(
        ascii_table(
            ["stream", "context", "table bits", "seal"],
            rows,
            title=f"codec context tables ({len(rows)})",
        )
    )


def _print_registries() -> None:
    """Every pluggable registry of the pipeline, by name."""
    from repro.compress.codec import CODEC_VARIANTS, DECODE_BACKENDS
    from repro.core.classify import BUFFER_STRATEGIES, RESTORE_SCHEMES
    from repro.core.plan import REGION_STRATEGIES
    from repro.squeeze.pipeline import SQUEEZE_PASSES

    print("registries:")
    for label, registry in (
        ("region strategies", REGION_STRATEGIES),
        ("buffer strategies", BUFFER_STRATEGIES),
        ("restore schemes", RESTORE_SCHEMES),
        ("squeeze passes", SQUEEZE_PASSES),
        ("codec variants", CODEC_VARIANTS),
        ("decode backends", DECODE_BACKENDS),
    ):
        print(f"  {label}: {', '.join(registry.names())}")


def _cmd_stages(args) -> None:
    """Registered pipeline plugins, then per-stage wall time and
    counters for each selected benchmark."""
    _print_registries()
    print()
    for name in args.names:
        config = _squash_config(args)
        result = squash_benchmark(name, args.scale, config)
        print(f"{name} (theta={args.theta}, scale={args.scale}):")
        if result.stage_report is not None:
            print(result.stage_report.render())
        print()


def _cmd_verify(args) -> int:
    if not args.prefix:
        print("verify: missing image prefix (repro verify <prefix>)")
        return 2
    report = api.verify(args.prefix)
    print(report.render())
    return 0 if report.ok else 1


def _traced_outcome(args):
    """Run the trace target — a saved-image prefix or a benchmark
    name — and return the :class:`repro.api.RunOutcome`."""
    from repro.workloads.mediabench import mediabench_program

    target = args.prefix
    if target in MEDIABENCH:
        config = _squash_config(args)
        result = squash_benchmark(target, args.scale, config)
        bench = mediabench_program(target, scale=args.scale)
        return api.run(
            result,
            api.RunSpec(
                input_words=tuple(bench.timing_input),
                max_steps=500_000_000,
            ),
        )
    return api.run(target)


def _cmd_trace(args) -> int:
    """Execute a squashed image with tracing armed and export the
    deterministic runtime event stream."""
    import json

    from repro.obs.trace import (
        chrome_trace,
        enable_tracing,
        write_chrome_trace,
        write_jsonl,
    )

    if not args.prefix:
        print("trace: missing target (repro trace <prefix-or-benchmark>)")
        return 2
    tracer = enable_tracing()
    tracer.clear()
    outcome = _traced_outcome(args)
    # Runtime events are stamped with modelled cycles and replay
    # byte-identically; host-side spans (wall-clock) only appear with
    # --full, keeping the default export deterministic.
    events = tracer.events() if args.full else tracer.events("runtime")
    if args.jsonl:
        write_jsonl(args.jsonl, events)
        print(f"trace: {len(events)} events -> {args.jsonl}")
    if args.out:
        write_chrome_trace(args.out, events)
        print(f"trace: {len(events)} events -> {args.out}")
    elif not args.jsonl:
        print(json.dumps(chrome_trace(events)))
    if tracer.dropped:
        print(f"trace: ring buffer dropped {tracer.dropped} events "
              f"(raise REPRO_TRACE_BUFFER)", file=sys.stderr)
    print(
        f"trace: {len(events)} events, {outcome.cycles} cycles, "
        f"exit {outcome.exit_code}",
        file=sys.stderr,
    )
    return 0


def _cmd_metrics(args) -> int:
    """Render the unified metrics registry (optionally populating it
    by squashing and running one benchmark first)."""
    import json

    from repro.obs.metrics import get_registry

    if args.prefix:
        if args.prefix not in MEDIABENCH:
            print(f"metrics: unknown benchmark {args.prefix!r}")
            return 2
        _traced_outcome(args)
    registry = get_registry()
    if args.json:
        print(json.dumps(registry.snapshot(), sort_keys=True))
    else:
        print(registry.render())
        from repro.analysis.parallel import last_sweep_rollup

        rollup = last_sweep_rollup()
        if rollup:
            print()
            print(
                f"last sweep: {rollup['cells']} cells "
                f"({rollup['cache_hits']} cached, "
                f"{rollup['computed']} computed, "
                f"{rollup['failed']} failed)"
            )
    return 0


def _cmd_faultsweep(args) -> int:
    from repro.faultinject import sweep_program

    code = 0
    for name in args.names:
        report = sweep_program(
            name, args.scale, faults=args.faults, seed=args.seed,
            theta=args.theta, bound=args.bound,
            codec_variant=args.variant,
        )
        print(f"{name}:")
        print(report.render())
        if not report.ok:
            code = 1
    return code


def _cmd_chaossweep(args) -> int:
    from repro.faultinject import run_chaos_sweep

    code = 0
    for name in args.names:
        report = run_chaos_sweep(
            name,
            scale=args.scale,
            faults=args.faults,
            seed=args.seed,
            workers=args.workers,
            deadline=args.deadline,
        )
        print(report.render())
        if not report.ok:
            code = 1
    return code


def _cmd_store(args) -> int:
    """Inspect or maintain the unified artifact store
    (``repro store stats|gc|verify``)."""
    import json

    action = args.prefix or "stats"
    if action == "stats":
        stats = api.store_stats()
        if args.json:
            print(json.dumps(stats, sort_keys=True))
            return 0
        print(f"artifact store at {stats['root']}:")
        print(f"  refs: {stats['refs']}  "
              + "  ".join(f"{ns} {n}" for ns, n in
                          stats["per_namespace"].items()))
        print(f"  objects: {stats['objects']}")
        quota = stats["quota_bytes"]
        print(f"  usage: {stats['usage_bytes']}B"
              + (f" / {quota}B quota" if quota else " (no quota)"))
        print(f"  policy: {stats['policy']}  "
              f"breaker: {'OPEN' if stats['breaker_open'] else 'closed'}")
        return 0
    if action == "gc":
        report = api.store_gc()
        print("store gc: "
              f"{report['stale_temps']} stale temps, "
              f"{report['orphan_objects']} orphan objects, "
              f"{report['corrupt_refs']} corrupt refs removed, "
              f"{report['evicted']}B evicted to quota")
        return 0
    if action == "verify":
        report = api.store_verify()
        if args.json:
            print(json.dumps(report, sort_keys=True))
        else:
            corrupt = sum(report["corrupt"].values())
            print(f"store verify: {report['ok']}/{report['refs']} refs ok"
                  + (f", corrupt by reason {report['corrupt']}"
                     if corrupt else "")
                  + f"; {report['objects']} objects "
                  f"({report['orphan_objects']} orphaned, "
                  f"{report['dedup_refs']} deduplicated refs); "
                  f"manifest {report['manifest']}; "
                  f"usage {report['usage_bytes']}B")
        return 1 if (sum(report["corrupt"].values())
                     or report["manifest"] == "corrupt") else 0
    print(f"store: unknown action {action!r} (stats|gc|verify)")
    return 2


def _cmd_storechaos(args) -> int:
    from repro.faultinject import run_store_chaos

    code = 0
    for name in args.names:
        report = run_store_chaos(
            name, scale=args.scale, seed=args.seed,
            quota_bytes=args.quota,
        )
        print(report.render())
        if not report.ok:
            code = 1
    return code


def _parse_http_endpoint(raw: str) -> tuple[str | None, int]:
    """``[HOST:]PORT`` -> (host or None, port)."""
    host, _, port = raw.rpartition(":")
    try:
        return (host or None), int(port)
    except ValueError:
        raise SystemExit(
            f"serve: --http takes [HOST:]PORT, not {raw!r}"
        ) from None


def _cmd_serve(args) -> int:
    """Run the job service against the filesystem spool until
    signalled (SIGTERM/SIGINT drain gracefully), *--max-jobs*
    terminal jobs, or *--idle-exit* seconds of quiet.  With
    ``--http [HOST:]PORT`` the JSON front end is served alongside
    the spool."""
    import signal
    import threading

    from repro.service import JobEngine, ServiceConfig, serve_forever

    engine = JobEngine(ServiceConfig.from_settings())
    engine.start(recover=True)
    http_server = None
    if args.http is not None:
        from repro.service import serve_http

        host, port = _parse_http_endpoint(args.http)
        http_server = serve_http(engine, host=host, port=port)
    stop_flag = threading.Event()

    def _request_stop(signum, frame):
        stop_flag.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _request_stop)
    print(
        f"serve: up (workers {engine.config.workers}, "
        f"queue depth {engine.config.queue_depth}, "
        f"tenant cap {engine.config.tenant_cap}"
        + (f", http {http_server.url}" if http_server else "")
        + ")",
        file=sys.stderr,
    )
    try:
        terminal = serve_forever(
            engine,
            max_jobs=args.max_jobs,
            idle_exit=args.idle_exit,
            should_stop=stop_flag.is_set,
        )
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        if http_server is not None:
            http_server.stop()
        engine.stop()
    print(f"serve: drained after {terminal} terminal jobs",
          file=sys.stderr)
    return 0


def _cmd_submit(args) -> int:
    """Submit one job to a running ``repro serve`` process.

    The positional argument picks the job kind (default ``squash``);
    requests go through the typed :class:`ServiceClient` — over the
    filesystem spool by default, or over HTTP with ``--url``.
    ``--wait SECONDS`` blocks for the result.
    """
    import json

    from repro.errors import SquashError
    from repro.service import JobSpec, ServiceClient

    kind = args.prefix or "squash"
    if kind == "squash":
        payload = {
            "name": args.names[0], "theta": args.theta,
            "scale": args.scale, "bound": args.bound,
        }
    elif kind == "sweep":
        payload = {"names": list(args.names), "scale": args.scale,
                   "sweep_kind": "size"}
        if args.fanout:
            payload["fanout"] = True
    elif kind == "verify":
        if not args.save:
            print("submit: verify jobs need --save PREFIX")
            return 2
        payload = {"prefix": args.save}
    else:
        print(f"submit: unknown job kind {kind!r} (squash|sweep|verify)")
        return 2
    spec = JobSpec(
        kind=kind, payload=payload, tenant=args.tenant,
        priority=args.priority, deadline=args.deadline_s,
    )
    with ServiceClient(args.url or "spool") as client:
        handle = client.submit(spec)
        print(f"submitted {handle.id} ({kind}, tenant={args.tenant}, "
              f"priority={args.priority}, "
              f"transport={client.transport})")
        if args.wait is None:
            return 0
        try:
            result = handle.result(timeout=args.wait)
        except SquashError as exc:
            print(f"{handle.id}: {type(exc).__name__}: {exc}")
            return 1
        except TimeoutError as exc:
            print(f"{handle.id}: timeout: {exc}")
            return 1
    print(f"{handle.id}: done")
    print(json.dumps(result or {}, sort_keys=True))
    return 0


def _cmd_jobs(args) -> int:
    """List every journaled job (the crash-safe service history)."""
    from repro.service import JobJournal

    records = JobJournal().load_all()
    if not records:
        print("jobs: journal is empty")
        return 0
    rows = []
    for record in sorted(
        records.values(), key=lambda r: (r.get("wall_time") or 0.0)
    ):
        spec = record.get("spec") or {}
        rows.append([
            record.get("id", "?")[:12],
            record.get("state", "?"),
            spec.get("kind", "?"),
            spec.get("tenant", "?"),
            spec.get("priority", "?"),
            "yes" if record.get("recovered") else "",
        ])
    print(
        ascii_table(
            ["job", "state", "kind", "tenant", "priority", "recovered"],
            rows,
            title=f"service journal ({len(rows)} jobs)",
        )
    )
    return 0


def _cmd_servechaos(args) -> int:
    from repro.faultinject import run_serve_chaos

    report = run_serve_chaos(
        scale=args.scale, seed=args.seed, scenarios=args.scenarios,
        transport=args.transport,
    )
    print(report.render())
    return 0 if report.ok else 1


_COMMANDS = {
    "table1": _cmd_table1,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "fig6": _cmd_fig6,
    "fig7a": _cmd_fig7a,
    "fig7b": _cmd_fig7b,
    "stubs": _cmd_stubs,
    "ratio": _cmd_ratio,
    "safe": _cmd_safe,
    "squash": _cmd_squash,
    "stages": _cmd_stages,
    "verify": _cmd_verify,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
    "faultsweep": _cmd_faultsweep,
    "chaossweep": _cmd_chaossweep,
    "store": _cmd_store,
    "storechaos": _cmd_storechaos,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
    "servechaos": _cmd_servechaos,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of 'Profile-Guided Code "
        "Compression' (PLDI 2002).",
    )
    parser.add_argument(
        "command",
        choices=[*_COMMANDS, "all"],
        help="experiment to regenerate",
    )
    parser.add_argument(
        "prefix", nargs="?", default=None,
        help="saved-image prefix or benchmark name "
        "(verify/trace/metrics commands)",
    )
    parser.add_argument(
        "--names", nargs="*", default=list(MEDIABENCH),
        help="benchmark subset (default: all eleven)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.5,
        help="program scale relative to Table 1 (default 0.5)",
    )
    parser.add_argument(
        "--theta", type=float, default=0.0,
        help="cold-code threshold for the squash command",
    )
    parser.add_argument(
        "--bound", type=int, default=512,
        help="buffer bound in bytes for the squash command",
    )
    parser.add_argument(
        "--variant", default="",
        help="codec variant from the codec registry (squash/stages/"
        "faultsweep commands; default: the config's own codec, or "
        "REPRO_CODEC_VARIANT)",
    )
    parser.add_argument(
        "--run", action="store_true",
        help="also execute the squashed image (squash command)",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="print the per-stage pipeline report (squash command)",
    )
    parser.add_argument(
        "--save", default=None, metavar="PREFIX",
        help="save the squashed image to PREFIX.img/.json "
        "(squash command)",
    )
    parser.add_argument(
        "--faults", type=int, default=100,
        help="faults to inject per benchmark "
        "(faultsweep/chaossweep commands)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="fault-injection RNG seed (faultsweep/chaossweep commands)",
    )
    parser.add_argument(
        "--deadline", type=float, default=15.0,
        help="per-cell supervisor deadline in seconds "
        "(chaossweep command)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker pool size (chaossweep command; default: CPU count)",
    )
    parser.add_argument(
        "--quota", type=int, default=32 * 1024,
        help="store quota in bytes for the storechaos command "
        "(default 32768)",
    )
    parser.add_argument(
        "--tenant", default="default",
        help="tenant namespace for the submitted job (submit command)",
    )
    parser.add_argument(
        "--priority", default="batch",
        choices=("interactive", "batch"),
        help="priority class for the submitted job (submit command)",
    )
    parser.add_argument(
        "--deadline-s", type=float, default=None, metavar="SECONDS",
        help="job deadline in seconds from submission (submit command)",
    )
    parser.add_argument(
        "--wait", type=float, default=None, metavar="SECONDS",
        help="wait up to SECONDS for the job's terminal journal "
        "record (submit command)",
    )
    parser.add_argument(
        "--max-jobs", type=int, default=None,
        help="exit after this many terminal jobs (serve command)",
    )
    parser.add_argument(
        "--idle-exit", type=float, default=None, metavar="SECONDS",
        help="exit after SECONDS with nothing spooled, queued, or "
        "running (serve command)",
    )
    parser.add_argument(
        "--http", default=None, metavar="[HOST:]PORT",
        help="also expose the JSON HTTP front end on [HOST:]PORT "
        "(serve command; default host REPRO_SERVICE_HTTP_HOST)",
    )
    parser.add_argument(
        "--url", default=None, metavar="URL",
        help="submit over HTTP to a running 'repro serve --http' "
        "instead of the filesystem spool (submit command)",
    )
    parser.add_argument(
        "--fanout", action="store_true",
        help="partition a sweep job into per-benchmark cells claimed "
        "by every serving engine sharing the store (submit command)",
    )
    parser.add_argument(
        "--scenarios", nargs="*", default=None,
        help="serve-chaos scenario subset (servechaos command; "
        "default: all)",
    )
    parser.add_argument(
        "--transport", default="spool", choices=("spool", "http"),
        help="client transport the serve-chaos scenarios exercise "
        "(servechaos command; default spool)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the Chrome trace-event JSON to PATH "
        "(trace command; default: stdout)",
    )
    parser.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="also write the trace as JSON Lines to PATH (trace command)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the metrics snapshot as JSON (metrics command)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="include wall-clock host spans in the trace export "
        "(trace command; the default exports only the deterministic "
        "runtime events)",
    )
    args = parser.parse_args(argv)
    args.names = tuple(args.names)

    code = 0
    try:
        if args.command == "all":
            for name, command in _COMMANDS.items():
                # Sub-commands needing extra arguments don't batch.
                if name in (
                    "squash", "stages", "verify", "trace", "metrics",
                    "faultsweep", "chaossweep", "store", "storechaos",
                    "serve", "submit", "jobs", "servechaos",
                ):
                    continue
                command(args)
                print()
        else:
            code = _COMMANDS[args.command](args) or 0
    except BrokenPipeError:  # e.g. `repro fig6 | head`
        import os

        try:
            sys.stdout.close()
        except Exception:
            pass
        os.dup2(os.open(os.devnull, os.O_WRONLY), 1)
    return code


if __name__ == "__main__":
    sys.exit(main())
