#!/usr/bin/env python
"""Tour one MediaBench-like benchmark through the full pipeline.

Generates the program, squeezes it (Table 1), profiles it, then squashes
it across the θ ladder, printing the size/speed tradeoff curve the
paper's Figures 6 and 7 chart.

Run:  python examples/mediabench_tour.py [benchmark] [scale]
"""

import sys

from repro import SquashConfig, mediabench_program, squash
from repro.analysis import ascii_table
from repro.analysis.stats import percent
from repro.vm.machine import Machine

THETAS = (0.0, 1e-3, 5e-3, 1e-2, 0.1, 1.0)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "adpcm"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.35

    bench = mediabench_program(name, scale=scale)
    stats = bench.squeeze_stats
    print(
        f"{name}: generated {bench.input_size} instructions; squeeze "
        f"removed {percent(stats.reduction)} "
        f"(unreachable {stats.unreachable.instrs_removed}, "
        f"nops {stats.nops.nops_removed}, "
        f"dead {stats.dead.stores_removed}, "
        f"abstraction {stats.abstraction.instrs_saved}) "
        f"-> {bench.squeeze_size} instructions"
    )
    print(
        f"profile: {bench.profile.tot_instr_ct} dynamic instructions; "
        f"{len(bench.profile.never_executed)} of "
        f"{len(bench.profile.counts)} blocks never executed"
    )

    baseline = Machine(
        bench.layout.image, input_words=bench.timing_input
    ).run()

    rows = []
    for theta in THETAS:
        result = squash(
            bench.squeezed, bench.profile, SquashConfig(theta=theta)
        )
        run, runtime = result.run(bench.timing_input, max_steps=500_000_000)
        assert run.output == baseline.output
        rows.append(
            [
                theta,
                result.footprint.total,
                percent(result.reduction),
                len(result.info.regions),
                runtime.stats.decompressions,
                f"{run.cycles / baseline.cycles:.3f}x",
            ]
        )
    print()
    print(
        ascii_table(
            ["theta", "words", "reduction", "regions",
             "decompressions", "rel. time"],
            rows,
            title=f"{name}: size/speed tradeoff across θ (scale={scale})",
        )
    )


if __name__ == "__main__":
    main()
