#!/usr/bin/env python
"""Look inside the rewriter: cold blocks, regions, stubs, buffer safety.

Prints the anatomy of one squashed benchmark: which blocks were cold,
how they were partitioned into buffer-bounded regions, where the entry
stubs landed, which functions the buffer-safe analysis cleared, and the
image's segment map.

Run:  python examples/explore_regions.py [benchmark]
"""

import sys
from collections import Counter

from repro import SquashConfig, mediabench_program, squash
from repro.analysis import ascii_table, bar_chart, profile_report


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "adpcm"
    bench = mediabench_program(name, scale=0.25)
    result = squash(bench.squeezed, bench.profile, SquashConfig(theta=0.0))
    info = result.info

    total = bench.squeeze_size
    cold = sum(bench.profile.sizes.get(l, 0) for l in info.cold)
    compressed = sum(
        bench.profile.sizes.get(l, 2) for l in info.compressed_blocks
    )
    print(f"{name} at θ=0 (scale 0.25):")
    print(f"  code: {total} instructions")
    print(f"  cold: {cold} ({cold / total:.0%})")
    print(f"  compressed: ~{compressed} ({compressed / total:.0%})")
    print(f"  unswitched jump tables: {info.unswitch.unswitched_blocks} "
          f"({info.unswitch.reclaimed_words} table words reclaimed)")
    print()

    sizes = [
        desc.expanded_size for desc in result.descriptor.regions
    ]
    histogram = Counter(size // 16 * 16 for size in sizes)
    labels = [f"{bucket:>4}-{bucket + 15}" for bucket in sorted(histogram)]
    values = [float(histogram[b]) for b in sorted(histogram)]
    print(
        bar_chart(
            labels, values, title="region sizes (buffer slots, bucketed)",
            fmt="{:.0f}",
        )
    )
    print()

    calls = info.safe_calls + info.intra_region_calls + info.xcall_sites
    print(
        f"call sites in compressed code: {calls} "
        f"({info.safe_calls} to buffer-safe callees, "
        f"{info.intra_region_calls} intra-region, "
        f"{info.xcall_sites} CreateStub-protected)"
    )
    safe = sorted(info.safe_functions)
    print(f"buffer-safe functions ({len(safe)}): {', '.join(safe[:12])}"
          + (" ..." if len(safe) > 12 else ""))
    print()

    rows = [
        [seg.name, f"{seg.start:#x}", seg.size]
        for seg in result.image.segments
    ]
    print(ascii_table(["segment", "start", "words"], rows,
                      title="squashed image layout"))
    print()
    print(profile_report(bench.profile, max_rows=10))


if __name__ == "__main__":
    main()
