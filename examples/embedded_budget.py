#!/usr/bin/env python
"""Fit a firmware image into a fixed memory budget.

The paper's motivation: devices like the TMS320-C5x have tiny program
memories (64 Kwords), so an application that doesn't fit simply cannot
ship.  This example takes a MediaBench-like program that exceeds a
given budget and searches the θ axis for the *smallest* threshold that
fits -- compressing no more than necessary keeps the runtime overhead
minimal.

Run:  python examples/embedded_budget.py [budget_words]
"""

import sys

from repro import SquashConfig, mediabench_program, squash
from repro.vm.machine import Machine

BENCH = "gsm"
SCALE = 0.35
THETA_LADDER = (0.0, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0)


def main() -> None:
    bench = mediabench_program(BENCH, scale=SCALE)
    baseline_run = Machine(
        bench.layout.image, input_words=bench.timing_input
    ).run()
    base_words = bench.layout.image.segment("text").size
    budget = (
        int(sys.argv[1]) if len(sys.argv) > 1 else int(base_words * 0.80)
    )
    print(
        f"{BENCH}: squeezed firmware is {base_words} words; "
        f"budget is {budget} words "
        f"({budget - base_words:+} words short)"
    )

    chosen = None
    for theta in THETA_LADDER:
        result = squash(bench.squeezed, bench.profile, SquashConfig(theta=theta))
        size = result.footprint.total
        fits = size <= budget
        print(
            f"  theta={theta:<6} -> {size} words "
            f"({result.reduction:+.1%}) {'FITS' if fits else 'too big'}"
        )
        if fits and chosen is None:
            chosen = (theta, result)

    if chosen is None:
        print("no threshold fits; the budget is below what compression "
              "can reach")
        return

    theta, result = chosen
    run, runtime = result.run(bench.timing_input)
    assert run.output == baseline_run.output
    print(
        f"\nshipping with theta={theta}: {result.footprint.total} words, "
        f"runtime overhead {run.cycles / baseline_run.cycles - 1:+.1%} "
        f"({runtime.stats.decompressions} decompressions on the timing "
        f"input)"
    )
    fp = result.footprint
    print(
        "footprint breakdown: "
        f"code {fp.never_compressed}, compressed {fp.compressed}, "
        f"stubs {fp.entry_stubs}+{fp.stub_area}, "
        f"decompressor {fp.decompressor}, buffer {fp.runtime_buffer}, "
        f"offset table {fp.offset_table}"
    )


if __name__ == "__main__":
    main()
