#!/usr/bin/env python
"""Quickstart: squash a small hand-written program.

Builds a program from assembly (a hot loop plus a cold error-report
function), profiles it, compresses the cold code, and runs both the
original and the squashed image on an input that exercises the cold
path -- demonstrating on-demand decompression into the runtime buffer.

Run:  python examples/quickstart.py
"""

from repro import Machine, SquashConfig, collect_profile, squash
from repro.isa import assemble
from repro.program import BasicBlock, Function, Program
from repro.program.layout import layout


def build_program() -> Program:
    """Sum input words; a negative word triggers the cold path."""
    program = Program("quickstart")

    main = Function("main")
    main.add_block(
        BasicBlock(
            "main.entry",
            instrs=assemble("addi r31, 0, r9"),  # r9 = running sum
            fallthrough="main.loop",
        )
    )
    main.add_block(
        BasicBlock(
            "main.loop",
            instrs=assemble("sys read\nbeq r1, 0"),
            fallthrough="main.check",
            branch_target="main.done",
        )
    )
    main.add_block(
        BasicBlock(
            "main.check",
            instrs=assemble("blt r0, 0"),  # negative? cold path
            fallthrough="main.add",
            branch_target="main.cold",
        )
    )
    main.add_block(
        BasicBlock(
            "main.add",
            instrs=assemble("add r9, r0, r9"),
            fallthrough="main.loop",
        )
    )
    cold = BasicBlock(
        "main.cold",
        instrs=assemble("add r0, r31, r16\nbsr r26, 0"),
        fallthrough="main.loop",
    )
    cold.call_targets[1] = "report"
    main.add_block(cold)
    main.add_block(
        BasicBlock(
            "main.done",
            instrs=assemble(
                "add r9, r31, r16\nsys write\naddi r31, 0, r16\nsys exit"
            ),
        )
    )
    program.add_function(main)

    # A cold "error report": big enough that compressing it beats the
    # cost of its entry stub.
    report = Function("report")
    report.add_block(
        BasicBlock(
            "report.entry",
            instrs=assemble(
                """
                muli r16, 3, r1
                xori r1, 0xAA, r1
                addi r1, 17, r2
                slli r2, 2, r2
                subi r2, 5, r3
                andi r3, 0xFF, r3
                ori r3, 0x10, r4
                add r4, r1, r4
                blbs r4, 1
                """
            ),
            fallthrough="report.even",
            branch_target="report.odd",
        )
    )
    report.add_block(
        BasicBlock(
            "report.even",
            instrs=assemble(
                "muli r4, 7, r16\naddi r16, 1, r16\nsys write\nret"
            ),
        )
    )
    report.add_block(
        BasicBlock(
            "report.odd",
            instrs=assemble(
                "muli r4, 13, r16\nsubi r16, 2, r16\nsys write\nret"
            ),
        )
    )
    program.add_function(report)
    program.validate()
    return program


def main() -> None:
    program = build_program()
    base = layout(program)
    print(f"program: {program.code_size} instructions")

    # Profile on an input that never takes the cold path.
    profile_input = [3, 5, 7, 11, 13] * 10
    profile = collect_profile(program, base.image, profile_input)
    cold = sorted(profile.never_executed)
    print(f"never executed during profiling: {cold}")

    # Compress everything the profile says is cold (θ = 0).
    result = squash(program, profile, SquashConfig(theta=0.0))
    print(
        f"footprint: {result.baseline_words} -> {result.footprint.total} "
        f"words ({result.reduction:+.1%}; negative is expected for a "
        f"program this tiny: the decompressor and buffer are fixed costs)"
    )
    print(f"regions: {len(result.info.regions)}; "
          f"entry stubs: {result.info.entry_stub_count}")

    # Run both images on an input WITH cold items.
    timing_input = [3, -4, 5, -6, 7]
    original = Machine(base.image, input_words=timing_input).run()
    squashed_run, runtime = result.run(timing_input)

    print(f"original output:  {original.output}")
    print(f"squashed output:  {squashed_run.output}")
    assert squashed_run.output == original.output
    print(
        f"decompressions: {runtime.stats.decompressions} "
        f"(+{runtime.stats.buffer_hits} buffer hits), "
        f"bits decoded: {runtime.stats.bits_decoded}, "
        f"cycles: {original.cycles} -> {squashed_run.cycles} "
        f"(the one decompression dominates a {original.cycles}-cycle run)"
    )
    print("outputs identical -- decompression-on-demand works.")


if __name__ == "__main__":
    main()
