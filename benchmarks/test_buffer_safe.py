"""E9 / Section 6.1 in-text: buffer-safe analysis.

Paper: "about 12.5% of the compressible regions" are identified as
buffer-safe on average, with gsm (20%) and g721_enc (19%) the highest.
We report two concrete metrics: the fraction of functions that are
buffer-safe, and the fraction of call sites in compressed code whose
callee is buffer-safe (each such call avoids a restore stub and a
re-decompression).
"""

from benchmarks.conftest import ALL_NAMES, SCALE, emit
from repro.analysis import ascii_table
from repro.analysis.experiments import buffer_safe_stats
from repro.analysis.stats import arithmetic_mean, percent


def test_buffer_safe(benchmark):
    rows = benchmark.pedantic(
        lambda: buffer_safe_stats(ALL_NAMES, scale=SCALE, theta_paper=0.0),
        rounds=1,
        iterations=1,
    )
    body = [
        [
            row.name,
            percent(row.safe_function_fraction),
            percent(row.safe_call_fraction),
        ]
        for row in rows
    ]
    mean_fn = arithmetic_mean([r.safe_function_fraction for r in rows])
    mean_call = arithmetic_mean([r.safe_call_fraction for r in rows])
    body.append(["MEAN", percent(mean_fn), percent(mean_call)])
    body.append(["PAPER", "~12.5% of regions", "(gsm 20%, g721_enc 19%)"])
    table = ascii_table(
        ["program", "buffer-safe functions", "safe call sites"],
        body,
        title=f"Buffer-safe analysis at θ=0 (Section 6.1; scale={SCALE})",
    )
    emit("buffer_safe", table)

    for row in rows:
        assert 0.0 < row.safe_function_fraction < 1.0
        assert 0.0 <= row.safe_call_fraction < 1.0
    # the high-leaf-bias benchmarks should sit at or above the mean
    by_name = {row.name: row for row in rows}
    assert (
        by_name["gsm"].safe_function_fraction
        >= mean_fn * 0.8
    )
