"""E6 / Figure 7(b): execution time relative to squeezed code.

Paper: on the (larger, diverging) timing inputs, mean slowdown is
~1.00x at θ=0, ~1.04x at θ=1e-5, and ~1.24x at θ=5e-5; individual
benchmarks vary widely because decompression cost depends on how often
timing-input paths fall just under the profiling cutoff.
"""

from benchmarks.conftest import ALL_NAMES, SCALE, emit, experiment_module
from repro.analysis import ascii_table, geometric_mean
from repro.analysis.experiments import FIG7_THETAS

PAPER_MEANS = {0.0: 1.00, 1e-5: 1.04, 5e-5: 1.24}


def test_fig7b_time(benchmark):
    fig7_time_rows = experiment_module().fig7_time_rows
    rows = benchmark.pedantic(
        lambda: fig7_time_rows(names=ALL_NAMES, scale=SCALE),
        rounds=1,
        iterations=1,
    )
    by_name: dict[str, dict[float, float]] = {}
    for row in rows:
        by_name.setdefault(row.name, {})[row.theta_paper] = (
            row.relative_time
        )

    body = [
        [name] + [f"{by_name[name][t]:.3f}" for t in FIG7_THETAS]
        for name in ALL_NAMES
    ]
    means = {
        t: geometric_mean([by_name[n][t] for n in ALL_NAMES])
        for t in FIG7_THETAS
    }
    body.append(["MEAN"] + [f"{means[t]:.3f}" for t in FIG7_THETAS])
    body.append(
        ["PAPER MEAN"] + [f"{PAPER_MEANS[t]:.2f}" for t in FIG7_THETAS]
    )
    table = ascii_table(
        ["program"] + [f"θp={t}" for t in FIG7_THETAS],
        body,
        title=(
            f"Figure 7(b): execution time relative to squeezed code "
            f"(timing inputs; scale={SCALE})"
        ),
    )
    emit("fig7b_time", table)

    # Shape: near-free at θ=0, growing with θ.
    assert means[0.0] < 1.10
    assert means[1e-5] >= means[0.0] - 0.01
    assert means[5e-5] >= means[1e-5] - 0.01
    assert means[5e-5] > 1.02  # the cost is visible at 5e-5
