"""E3 / Figure 4: amount of cold and compressible code vs. θ.

Paper (geometric means): cold code grows from ~73% of the program at
θ=0 to ~94% at θ=0.01 and 100% at θ=1; compressible code tracks a few
points below (not all cold code is profitable to compress).
"""

from benchmarks.conftest import ALL_NAMES, SCALE, emit
from repro.analysis import ascii_table
from repro.analysis.experiments import FIG6_THETAS, fig4_rows
from repro.analysis.stats import percent

#: Paper's curve, eyeballed from Figure 4 (geometric means).
PAPER_COLD = {0.0: 0.73, 1e-5: 0.776, 1e-4: 0.80, 1e-3: 0.84,
              1e-2: 0.94, 1.0: 1.0}


def test_fig4_cold_and_compressible(benchmark):
    rows = benchmark.pedantic(
        lambda: fig4_rows(names=ALL_NAMES, scale=SCALE, thetas=FIG6_THETAS),
        rounds=1,
        iterations=1,
    )
    table = ascii_table(
        ["theta (paper)", "theta (ours)", "cold", "compressible",
         "paper cold"],
        [
            [
                row.theta_paper,
                row.theta_ours,
                percent(row.cold_fraction),
                percent(row.compressible_fraction),
                percent(PAPER_COLD[row.theta_paper]),
            ]
            for row in rows
        ],
        title=(
            f"Figure 4: cold and compressible code, geometric mean "
            f"over {len(ALL_NAMES)} benchmarks (scale={SCALE})"
        ),
    )
    emit("fig4_cold_code", table)

    # Shape assertions.
    cold = [row.cold_fraction for row in rows]
    comp = [row.compressible_fraction for row in rows]
    assert cold == sorted(cold), "cold fraction must grow with theta"
    for c, k in zip(comp, cold):
        assert c <= k + 1e-9, "compressible is a subset of cold"
    assert 0.6 < cold[0] < 0.85          # paper: 73% at theta=0
    assert cold[-1] == 1.0               # everything cold at theta=1
    assert comp[-1] > 0.8                # paper: ~96% compressible
