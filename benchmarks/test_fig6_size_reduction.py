"""E4 / Figure 6: code-size reduction vs. θ, per benchmark.

Paper: reductions grow from 9.0-22.1% (mean 13.7%) at θ=0 to
21.5-31.8% (mean 26.5%) at θ=1, with most of the benefit already at
low thresholds.
"""

from benchmarks.conftest import ALL_NAMES, SCALE, emit, experiment_module
from repro.analysis import ascii_table, geometric_mean
from repro.analysis.experiments import FIG6_THETAS
from repro.analysis.stats import percent

#: Paper's mean reductions at the Figure 6 thresholds.
PAPER_MEAN = {0.0: 0.137, 1e-5: 0.168, 1e-4: None, 1e-3: None,
              1e-2: None, 1.0: 0.265}


def test_fig6_size_reduction(benchmark):
    fig6_rows = experiment_module().fig6_rows
    rows = benchmark.pedantic(
        lambda: fig6_rows(names=ALL_NAMES, scale=SCALE, thetas=FIG6_THETAS),
        rounds=1,
        iterations=1,
    )
    by_name: dict[str, dict[float, float]] = {}
    for row in rows:
        by_name.setdefault(row.name, {})[row.theta_paper] = row.reduction

    body = [
        [name] + [percent(by_name[name][t]) for t in FIG6_THETAS]
        for name in ALL_NAMES
    ]
    means = [
        geometric_mean(
            [1 - by_name[name][t] for name in ALL_NAMES]
        )
        for t in FIG6_THETAS
    ]
    body.append(["MEAN"] + [percent(1 - m) for m in means])
    table = ascii_table(
        ["program"] + [f"θp={t}" for t in FIG6_THETAS],
        body,
        title=(
            f"Figure 6: code-size reduction vs. θ (paper-nominal θ, "
            f"evaluated at θ×{100:g}; scale={SCALE})"
        ),
    )
    emit("fig6_size_reduction", table)

    # Shape: per-benchmark monotone growth; everyone wins at θ=1.
    for name in ALL_NAMES:
        series = [by_name[name][t] for t in FIG6_THETAS]
        for lo, hi in zip(series, series[1:]):
            assert hi >= lo - 0.005
        assert series[0] > 0.05, f"{name} should already win at θ=0"
        assert series[-1] > series[0] + 0.02, (
            f"{name} should gain from higher θ"
        )
    # Mean bands around the paper's endpoints.
    mean0 = 1 - means[0]
    mean1 = 1 - means[-1]
    assert 0.08 < mean0 < 0.30, f"θ=0 mean reduction {mean0:.3f}"
    assert mean1 > mean0 + 0.03
