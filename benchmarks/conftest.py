"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures,
prints it, and writes it under ``benchmarks/results/`` for
EXPERIMENTS.md.  ``REPRO_BENCH_SCALE`` (default 0.5) scales the
programs' static/dynamic size; 1.0 reproduces Table 1's exact
instruction counts at the cost of longer runs.

``REPRO_BENCH_PARALLEL=1`` routes the figure sweeps through
``repro.analysis.parallel`` -- the process-pool harness with the
persistent on-disk cell cache -- instead of the serial drivers.  Rows
are identical either way.
"""

from __future__ import annotations

import pathlib

import pytest

from repro import settings as _settings
from repro.workloads.mediabench import MEDIABENCH

#: Program scale used by all benchmarks.
SCALE = _settings.current().bench_scale

#: All eleven benchmarks.
ALL_NAMES = MEDIABENCH
#: A representative subset for the expensive sweeps.
SWEEP_NAMES = ("adpcm", "gsm", "jpeg_dec", "pgp")

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a rendered table and persist it to results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")


@pytest.fixture(scope="session")
def scale() -> float:
    return SCALE


def experiment_module():
    """The figure-sweep driver module.

    Serial (``repro.analysis.experiments``) by default; the parallel
    cached harness (``repro.analysis.parallel``) when
    ``REPRO_BENCH_PARALLEL`` is set to anything but ``0``.
    """
    if _settings.current().bench_parallel:
        from repro.analysis import parallel

        return parallel
    from repro.analysis import experiments

    return experiments
