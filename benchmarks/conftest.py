"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures,
prints it, and writes it under ``benchmarks/results/`` for
EXPERIMENTS.md.  ``REPRO_BENCH_SCALE`` (default 0.5) scales the
programs' static/dynamic size; 1.0 reproduces Table 1's exact
instruction counts at the cost of longer runs.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.workloads.mediabench import MEDIABENCH

#: Program scale used by all benchmarks.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))

#: All eleven benchmarks.
ALL_NAMES = MEDIABENCH
#: A representative subset for the expensive sweeps.
SWEEP_NAMES = ("adpcm", "gsm", "jpeg_dec", "pgp")

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a rendered table and persist it to results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")


@pytest.fixture(scope="session")
def scale() -> float:
    return SCALE
