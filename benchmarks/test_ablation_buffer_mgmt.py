"""A1: buffer-management strategies (the options of Section 2.2).

The paper rejects option 1 (never compress code containing calls: too
little becomes compressible) and option 2 (never discard decompressed
code: the memory footprint balloons) in favour of option 3 (overwrite
+ restore stubs).  This ablation measures all three.
"""

import dataclasses

from benchmarks.conftest import SCALE, SWEEP_NAMES, emit
from repro.analysis import ascii_table, geometric_mean
from repro.analysis.experiments import (
    baseline_run,
    squash_benchmark,
    squashed_run,
)
from repro.analysis.stats import percent
from repro.core.descriptor import BufferStrategy
from repro.core.pipeline import SquashConfig

THETA = 1.0  # stress the strategies with everything compressed


def test_buffer_management_ablation(benchmark):
    def run():
        results = {}
        for strategy in BufferStrategy:
            config = SquashConfig(theta=THETA, strategy=strategy)
            for name in SWEEP_NAMES:
                squashed = squash_benchmark(name, SCALE, config)
                run_result = squashed_run(name, SCALE, config)
                base = baseline_run(name, SCALE)
                results[(strategy, name)] = (
                    squashed.reduction,
                    run_result.cycles / base.cycles,
                )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    body = []
    summary = {}
    for strategy in BufferStrategy:
        reductions = [
            results[(strategy, name)][0] for name in SWEEP_NAMES
        ]
        times = [results[(strategy, name)][1] for name in SWEEP_NAMES]
        mean_red = 1 - geometric_mean([1 - r for r in reductions])
        mean_time = geometric_mean(times)
        summary[strategy] = (mean_red, mean_time)
        body.append(
            [strategy.value, percent(mean_red), f"{mean_time:.2f}x"]
        )
    table = ascii_table(
        ["strategy", "mean size reduction", "mean rel. time"],
        body,
        title=(
            f"Ablation: buffer management at θ={THETA} "
            f"(benchmarks={SWEEP_NAMES}, scale={SCALE})"
        ),
    )
    emit("ablation_buffer_mgmt", table)

    overwrite_red, _ = summary[BufferStrategy.OVERWRITE]
    no_calls_red, _ = summary[BufferStrategy.NO_CALLS]
    once_red, once_time = summary[BufferStrategy.DECOMPRESS_ONCE]
    # Option 1 compresses less than the paper's option 3.
    assert no_calls_red < overwrite_red
    # Option 2's footprint pays for every decompressed region.
    assert once_red < overwrite_red
    # ...but it decompresses each region at most once, so it runs fast.
    _, overwrite_time = summary[BufferStrategy.OVERWRITE]
    assert once_time <= overwrite_time + 0.01
