"""A4: region-construction ablation (Section 9's future work).

Compares the paper's bounded-DFS region formation with the
whole-function-first alternative: fewer, larger regions mean fewer
entry stubs and offset-table entries, but a function larger than the
buffer bound still has to be split.
"""

import dataclasses

from benchmarks.conftest import SCALE, SWEEP_NAMES, emit
from repro.analysis import ascii_table, geometric_mean
from repro.analysis.experiments import squash_benchmark
from repro.analysis.stats import percent
from repro.core.pipeline import SquashConfig

THETA = 1.0


def test_region_strategy_ablation(benchmark):
    def run():
        rows = []
        for name in SWEEP_NAMES:
            dfs = squash_benchmark(
                name, SCALE, SquashConfig(theta=THETA)
            )
            whole = squash_benchmark(
                name,
                SCALE,
                dataclasses.replace(
                    SquashConfig(theta=THETA),
                    region_strategy="whole_function",
                ),
            )
            rows.append(
                (
                    name,
                    len(dfs.info.regions),
                    len(whole.info.regions),
                    dfs.info.entry_stub_count,
                    whole.info.entry_stub_count,
                    dfs.reduction,
                    whole.reduction,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ascii_table(
        ["program", "regions (dfs)", "regions (whole-fn)",
         "stubs (dfs)", "stubs (whole-fn)",
         "reduction (dfs)", "reduction (whole-fn)"],
        [
            [name, rd, rw, sd, sw, percent(redd), percent(redw)]
            for name, rd, rw, sd, sw, redd, redw in rows
        ],
        title=(
            f"Ablation: region construction at θ={THETA} "
            f"(benchmarks={SWEEP_NAMES}, scale={SCALE})"
        ),
    )
    emit("ablation_region_strategy", table)

    # Whole-function-first should not fragment more than DFS, and the
    # footprints should be comparable (within a couple of points).
    for name, rd, rw, sd, sw, redd, redw in rows:
        assert rw <= rd * 1.2
        assert abs(redd - redw) < 0.05
