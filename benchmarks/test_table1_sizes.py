"""E1 / Table 1: per-benchmark code size, Input vs. Squeeze.

Paper: `squeeze` removes ~30% of the instructions of each `cc -O1`
binary; the table lists both counts for all eleven benchmarks.
"""

from benchmarks.conftest import ALL_NAMES, SCALE, emit
from repro.analysis import ascii_table
from repro.analysis.experiments import table1_rows
from repro.analysis.stats import percent


def test_table1(benchmark):
    rows = benchmark.pedantic(
        lambda: table1_rows(names=ALL_NAMES, scale=SCALE),
        rounds=1,
        iterations=1,
    )
    table = ascii_table(
        ["program", "input", "squeeze", "reduction",
         "paper input", "paper squeeze", "paper red."],
        [
            [
                row.name,
                row.input_size,
                row.squeeze_size,
                percent(row.reduction),
                row.paper_input,
                row.paper_squeeze,
                percent(row.paper_reduction),
            ]
            for row in rows
        ],
        title=f"Table 1: code size data (scale={SCALE})",
    )
    emit("table1", table)

    for row in rows:
        assert abs(row.input_size - row.paper_input) <= 10
        assert (
            abs(row.squeeze_size - row.paper_squeeze)
            <= max(20, row.paper_squeeze * 0.02)
        )
