#!/usr/bin/env python
"""Stage-timing benchmark: the staged pipeline and artifact reuse.

Produces ``BENCH_pipeline.json`` with two sections:

* ``stages`` -- per-stage wall time of one squash of the target
  benchmark (best of several runs), straight from the pass manager's
  :class:`StageReport`: where the rewriter actually spends its time.
* ``theta_sweep`` -- wall-clock of a θ-grid size sweep over the
  target benchmark, stage-artifact reuse off vs. on
  (``REPRO_STAGE_REUSE``).  With reuse the squeeze, profile, and
  baseline layout run once per benchmark instead of once per cell;
  each timing runs in a fresh interpreter against an empty cell cache
  so only the stage bundles differ.  Both sweeps must produce
  identical rows.

Usage::

    python benchmarks/run_pipeline_bench.py [--name adpcm] [--scale 0.3]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

STAGE_REPEATS = 3
SWEEP_THETAS = (0.0, 1e-5, 5e-5, 1e-4, 1e-3, 1.0)


def bench_stages(name: str, scale: float) -> dict:
    from repro.core.pipeline import SquashConfig
    from repro.core.pipeline import squash_program as squash
    from repro.workloads.mediabench import mediabench_program

    bench = mediabench_program(name, scale=scale)
    config = SquashConfig(theta=0.0)
    best: dict[str, float] = {}
    counters: dict[str, int] = {}
    for _ in range(STAGE_REPEATS):
        result = squash(bench.squeezed, bench.profile, config)
        for timing in result.stage_report.stages:
            if (
                timing.name not in best
                or timing.seconds < best[timing.name]
            ):
                best[timing.name] = timing.seconds
        counters = result.stage_report.merged_counters()
    return {
        "benchmark": name,
        "seconds": {k: round(v, 5) for k, v in best.items()},
        "total_seconds": round(sum(best.values()), 5),
        "counters": counters,
    }


def _child_sweep(name: str, scale: float) -> None:
    """Subprocess entry: time one θ-grid size sweep."""
    from repro.analysis.parallel import fig6_rows

    start = time.perf_counter()
    rows = fig6_rows(
        (name,), scale=scale, thetas=SWEEP_THETAS, parallel=False
    )
    elapsed = time.perf_counter() - start
    print(
        json.dumps(
            {
                "elapsed": elapsed,
                "rows": [
                    [row.name, row.theta_paper, row.reduction]
                    for row in rows
                ],
            }
        )
    )


def _run_sweep(name: str, scale: float, reuse: bool) -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-pipe-bench-") as tmp:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        env["REPRO_CACHE_DIR"] = tmp
        env["REPRO_STAGE_REUSE"] = "1" if reuse else "0"
        proc = subprocess.run(
            [
                sys.executable,
                str(pathlib.Path(__file__).resolve()),
                "--child",
                "--name",
                name,
                "--scale",
                str(scale),
            ],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
    return json.loads(proc.stdout.splitlines()[-1])


def bench_sweep(name: str, scale: float) -> dict:
    cold = _run_sweep(name, scale, reuse=False)
    reused = _run_sweep(name, scale, reuse=True)
    if cold["rows"] != reused["rows"]:
        raise AssertionError(
            "stage-artifact reuse changed the sweep rows"
        )
    return {
        "benchmark": name,
        "cells": len(cold["rows"]),
        "cold_seconds": round(cold["elapsed"], 2),
        "reuse_seconds": round(reused["elapsed"], 2),
        "speedup": round(cold["elapsed"] / reused["elapsed"], 2),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--name", default="adpcm")
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_pipeline.json")
    )
    parser.add_argument("--child", action="store_true")
    args = parser.parse_args()

    if args.child:
        _child_sweep(args.name, args.scale)
        return

    report = {
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "scale": args.scale,
        "stages": bench_stages(args.name, args.scale),
        "theta_sweep": bench_sweep(args.name, args.scale),
    }
    stages = report["stages"]["seconds"]
    print(
        "stages: "
        + ", ".join(f"{k}={v * 1000:.1f}ms" for k, v in stages.items())
    )
    sweep = report["theta_sweep"]
    print(
        f"theta sweep ({sweep['cells']} cells): cold "
        f"{sweep['cold_seconds']}s, with artifact reuse "
        f"{sweep['reuse_seconds']}s ({sweep['speedup']}x)"
    )
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
