#!/usr/bin/env python
"""Observability-overhead benchmark: tracing must be (nearly) free.

Produces ``BENCH_obs.json`` with one section per benchmark:

* wall time of the squashed timing run with the trace layer **off**
  (the default) and **on** (``REPRO_TRACE=1``), best of several
  repeats, each measured in a fresh interpreter so the global tracer
  state of one mode cannot leak into the other;
* the modelled cycle count and output digest of both runs — asserted
  identical, because observability must never perturb the modelled
  machine;
* the relative wall-time overhead, checked against the budget
  (3% by default; override with ``--budget``).

Usage::

    python benchmarks/run_obs_bench.py [--names adpcm gsm] [--scale 0.3]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

REPEATS = 5
DEFAULT_NAMES = ("adpcm", "gsm", "jpeg_dec")
DEFAULT_BUDGET = 0.03  # 3% wall-time overhead


def _child(name: str, scale: float, theta: float) -> None:
    """Subprocess entry: time the squashed timing run REPEATS times.

    The squash itself (and one warm-up run) happen before the clock
    starts — only the runtime decompressor path is being measured.
    """
    import hashlib

    from repro.analysis.experiments import map_theta, squash_benchmark
    from repro.core.pipeline import SquashConfig
    from repro.workloads.mediabench import mediabench_program

    bench = mediabench_program(name, scale=scale)
    config = SquashConfig(theta=map_theta(theta))
    result = squash_benchmark(name, scale, config)
    result.run(bench.timing_input, max_steps=500_000_000)  # warm-up

    best = float("inf")
    cycles = None
    digest = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        run, _runtime = result.run(
            bench.timing_input, max_steps=500_000_000
        )
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        cycles = run.cycles
        digest = hashlib.sha256(
            b"".join(
                (w & 0xFFFFFFFF).to_bytes(4, "little") for w in run.output
            )
        ).hexdigest()
    print(json.dumps({"best": best, "cycles": cycles, "output": digest}))


def _run_mode(name: str, scale: float, theta: float, traced: bool) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    env["REPRO_TRACE"] = "1" if traced else "0"
    proc = subprocess.run(
        [
            sys.executable, str(pathlib.Path(__file__).resolve()),
            "--child", "--names", name,
            "--scale", str(scale), "--theta", str(theta),
        ],
        env=env, capture_output=True, text=True, check=True,
    )
    return json.loads(proc.stdout.splitlines()[-1])


def bench_one(name: str, scale: float, theta: float) -> dict:
    plain = _run_mode(name, scale, theta, traced=False)
    traced = _run_mode(name, scale, theta, traced=True)
    if plain["cycles"] != traced["cycles"]:
        raise AssertionError(
            f"{name}: tracing changed modelled cycles "
            f"({plain['cycles']} vs {traced['cycles']})"
        )
    if plain["output"] != traced["output"]:
        raise AssertionError(f"{name}: tracing changed the program output")
    overhead = traced["best"] / plain["best"] - 1.0
    return {
        "benchmark": name,
        "cycles": plain["cycles"],
        "plain_seconds": round(plain["best"], 4),
        "traced_seconds": round(traced["best"], 4),
        "overhead": round(overhead, 4),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--names", nargs="*", default=list(DEFAULT_NAMES))
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--theta", type=float, default=1e-4)
    parser.add_argument("--budget", type=float, default=DEFAULT_BUDGET)
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_obs.json"))
    parser.add_argument("--child", action="store_true")
    args = parser.parse_args()

    if args.child:
        _child(args.names[0], args.scale, args.theta)
        return

    rows = [bench_one(name, args.scale, args.theta) for name in args.names]
    worst = max(row["overhead"] for row in rows)
    report = {
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "scale": args.scale,
        "theta": args.theta,
        "budget": args.budget,
        "worst_overhead": round(worst, 4),
        "runs": rows,
    }
    for row in rows:
        print(
            f"{row['benchmark']}: plain {row['plain_seconds']}s, traced "
            f"{row['traced_seconds']}s ({row['overhead'] * 100:+.2f}%), "
            f"cycles identical"
        )
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    if worst > args.budget:
        print(
            f"FAIL: worst tracing overhead {worst * 100:.2f}% exceeds "
            f"the {args.budget * 100:.0f}% budget"
        )
        sys.exit(1)
    print(
        f"OK: worst tracing overhead {worst * 100:.2f}% within the "
        f"{args.budget * 100:.0f}% budget"
    )


if __name__ == "__main__":
    main()
