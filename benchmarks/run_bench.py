#!/usr/bin/env python
"""Decode-path benchmark: table-driven decoder and the parallel harness.

Produces ``BENCH_decode.json`` with two sections:

* ``decoder`` -- symbol-decode throughput of ``ProgramCodec.
  decode_region`` over the pooled MediaBench streams, bit-at-a-time
  reference (``fast=False``) vs. the table-driven path (``fast=True``).
* ``fig7_time_sweep`` -- wall-clock of the full ``fig7_time_rows``
  sweep: the serial driver vs. the parallel cached harness, cold
  (empty on-disk cache) and warm (second run against the same cache).
  Each timing runs in a fresh interpreter so in-process ``lru_cache``
  state never leaks between configurations; on a single-core host the
  cold run has no pool speedup and the win comes from the persistent
  cache on reruns, which is recorded as-is.

Usage::

    python benchmarks/run_bench.py [--scale 0.3] [--out BENCH_decode.json]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

DECODER_REPEATS = 3


def _build_pools(scale: float):
    from repro.analysis.experiments import squash_benchmark
    from repro.compress.codec import ProgramCodec
    from repro.core.pipeline import SquashConfig
    from repro.workloads.mediabench import MEDIABENCH

    pools = []
    for name in MEDIABENCH:
        result = squash_benchmark(name, scale, SquashConfig(theta=1.0))
        blob = result.info.blob
        codec = ProgramCodec.from_table_words(list(blob.table_words))
        pools.append(
            (codec, blob.stream_words, tuple(blob.region_bit_offsets))
        )
    return pools


def _decode_pass(pools, fast: bool) -> tuple[int, float]:
    symbols = 0
    start = time.perf_counter()
    for codec, words, offsets in pools:
        for offset in offsets:
            items, _bits = codec.decode_region(words, offset, fast=fast)
            # one opcode symbol per item and per sentinel, one per field
            symbols += 1 + sum(1 + len(item.fields) for item in items)
    return symbols, time.perf_counter() - start


def bench_decoder(scale: float) -> dict:
    pools = _build_pools(scale)
    results = {}
    for label, fast in (("reference", False), ("table", True)):
        best = None
        symbols = 0
        for _ in range(DECODER_REPEATS):
            symbols, elapsed = _decode_pass(pools, fast)
            best = elapsed if best is None else min(best, elapsed)
        results[label] = {
            "symbols": symbols,
            "seconds": round(best, 4),
            "symbols_per_second": round(symbols / best),
        }
    results["speedup"] = round(
        results["table"]["symbols_per_second"]
        / results["reference"]["symbols_per_second"],
        2,
    )
    results["streams"] = len(pools)
    return results


def _child_sweep(mode: str, scale: float) -> None:
    """Subprocess entry: time one full fig7_time_rows sweep."""
    if mode == "serial":
        from repro.analysis.experiments import fig7_time_rows

        start = time.perf_counter()
        rows = fig7_time_rows(scale=scale)
    else:
        from repro.analysis.parallel import fig7_time_rows

        start = time.perf_counter()
        rows = fig7_time_rows(scale=scale)
    elapsed = time.perf_counter() - start
    print(
        json.dumps(
            {
                "elapsed": elapsed,
                "rows": [
                    [row.name, row.theta_paper, row.relative_time]
                    for row in rows
                ],
            }
        )
    )


def _run_sweep(mode: str, scale: float, cache_dir: str | None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    if cache_dir is not None:
        env["REPRO_CACHE_DIR"] = cache_dir
    proc = subprocess.run(
        [
            sys.executable,
            str(pathlib.Path(__file__).resolve()),
            "--child",
            mode,
            "--scale",
            str(scale),
        ],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout.splitlines()[-1])


def bench_sweep(scale: float) -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cold = _run_sweep("parallel", scale, cache_dir=tmp)
        warm = _run_sweep("parallel", scale, cache_dir=tmp)
        serial = _run_sweep("serial", scale, cache_dir=None)
    if not (serial["rows"] == cold["rows"] == warm["rows"]):
        raise AssertionError(
            "parallel harness rows diverged from the serial driver"
        )
    return {
        "rows": len(serial["rows"]),
        "serial_seconds": round(serial["elapsed"], 2),
        "parallel_cold_seconds": round(cold["elapsed"], 2),
        "parallel_warm_seconds": round(warm["elapsed"], 4),
        "speedup_cold": round(serial["elapsed"] / cold["elapsed"], 2),
        "speedup_warm": round(serial["elapsed"] / warm["elapsed"], 1),
        "workers": os.cpu_count(),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_decode.json")
    )
    parser.add_argument("--child", choices=("serial", "parallel"))
    parser.add_argument(
        "--skip-sweep",
        action="store_true",
        help="only run the decoder microbenchmark",
    )
    args = parser.parse_args()

    if args.child:
        _child_sweep(args.child, args.scale)
        return

    report = {
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "scale": args.scale,
        "decoder": bench_decoder(args.scale),
    }
    print(
        "decoder: {reference[symbols_per_second]:,} -> "
        "{table[symbols_per_second]:,} sym/s ({speedup}x)".format(
            **report["decoder"]
        )
    )
    if not args.skip_sweep:
        report["fig7_time_sweep"] = bench_sweep(args.scale)
        sweep = report["fig7_time_sweep"]
        print(
            f"fig7 sweep: serial {sweep['serial_seconds']}s, "
            f"parallel cold {sweep['parallel_cold_seconds']}s "
            f"({sweep['speedup_cold']}x), warm "
            f"{sweep['parallel_warm_seconds']}s "
            f"({sweep['speedup_warm']}x)"
        )
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
