#!/usr/bin/env python
"""Decode-path benchmark: decoder backends and the parallel harness.

Produces ``BENCH_decode.json`` (format **v3**) with three sections:

* ``decoder`` -- one subsection per codec variant (``baseline``,
  ``ctx1``): throughput and latency of every registered decode
  backend (``reference``, ``table``, ``vector``) over the pooled
  MediaBench streams: symbols/sec, regions/sec, and p50/p99 per-region
  decode latency.  Reference and table decode region-by-region, so
  their latency is per call; the vector backend decodes each stream's
  regions in one lane-parallel batch, so its per-region latency is the
  batch time amortized over the regions (recorded as such in
  ``latency_model``).  Within a variant all backends must produce
  byte-identical items -- the run aborts on digest divergence.
* ``fig7_time_sweep`` -- wall-clock of the full ``fig7_time_rows``
  sweep: the serial driver vs. the parallel cached harness at 1, 2,
  and ``effective_bench_workers()`` workers (deduplicated), each cold
  against an empty cache, plus one warm rerun.  Every entry records
  the worker count the child actually used and the host CPU count; a
  run resolved to a single worker is labelled ``single-worker``, never
  ``parallel``.
* ``pool_warm`` -- two identical supervised sweeps in one process with
  the disk cache off: the second leases the persistent warm pool built
  by the first (``REPRO_POOL_PERSIST``), so the delta is the
  once-per-host spawn/warm-up cost, cross-checked against the
  ``pool.acquire.*`` and ``stagecache.*`` metrics.

Usage::

    python benchmarks/run_bench.py [--scale 0.3] [--out BENCH_decode.json]
        [--skip-sweep] [--assert-vector-faster]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import pathlib
import platform
import statistics
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

DECODER_REPEATS = 3
BENCH_VERSION = 3

#: Decoder backends measured, in report order.
BACKENDS = ("reference", "table", "vector")

#: Codec variants the decoder section is measured under.
VARIANTS = ("baseline", "ctx1")


# -- decoder microbenchmark --------------------------------------------------


def _build_pools(scale: float, variant: str = ""):
    from repro.analysis.experiments import squash_benchmark
    from repro.compress.codec import ProgramCodec
    from repro.core.pipeline import SquashConfig
    from repro.workloads.mediabench import MEDIABENCH

    pools = []
    for name in MEDIABENCH:
        result = squash_benchmark(
            name, scale, SquashConfig(theta=1.0, codec_variant=variant)
        )
        blob = result.info.blob
        codec = ProgramCodec.from_table_words(list(blob.table_words))
        pools.append(
            (codec, blob.stream_words, tuple(blob.region_bit_offsets))
        )
    return pools


def _count_symbols(items) -> int:
    # one opcode symbol per item and per sentinel, one per field
    return 1 + sum(1 + len(item.fields) for item in items)


def _digest_results(results) -> str:
    """Canonical digest of decoded items + bit counts, backend-neutral."""
    h = hashlib.sha256()
    for items, bits in results:
        h.update(str(bits).encode())
        for item in items:
            h.update(
                (f"{item.opcode}:" + ",".join(map(str, item.fields))).encode()
            )
        h.update(b";")
    return h.hexdigest()


def _decode_pass_sequential(pools, backend: str):
    """One pass, region at a time: totals plus per-region latencies."""
    symbols = 0
    regions = 0
    latencies = []
    results = []
    start = time.perf_counter()
    for codec, words, offsets in pools:
        for offset in offsets:
            t0 = time.perf_counter()
            items, bits = codec.decode_region(words, offset, backend=backend)
            latencies.append(time.perf_counter() - t0)
            symbols += _count_symbols(items)
            regions += 1
            results.append((items, bits))
    return symbols, regions, time.perf_counter() - start, latencies, results


def _decode_pass_vector(pools):
    """One pass, every stream in a single lane-parallel batch.

    ``vector.decode_batch`` is the backend's throughput entry point:
    all regions of all streams chase in one fused pass, which is how a
    bulk consumer (the runtime warm path, a sweep worker) would drive
    it.  Per-region latency is therefore the batch time amortized over
    the regions -- the honest number for a backend whose setup is paid
    once per batch, not per call.
    """
    from repro.compress import vector

    jobs = [(codec, words, list(offsets)) for codec, words, offsets in pools]
    start = time.perf_counter()
    decoded_jobs = vector.decode_batch(jobs)
    elapsed = time.perf_counter() - start
    symbols = 0
    regions = 0
    results = []
    for decoded in decoded_jobs:
        for items, bits in decoded:
            symbols += _count_symbols(items)
            regions += 1
            results.append((items, bits))
    latencies = [elapsed / regions] * regions
    return symbols, regions, elapsed, latencies, results


def _percentile(samples, fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(len(ordered) * fraction))
    return ordered[index]


def bench_decoder(scale: float, variant: str = "") -> dict:
    pools = _build_pools(scale, variant)
    report: dict = {"streams": len(pools)}
    digests = {}
    for backend in BACKENDS:
        best = None
        for _ in range(DECODER_REPEATS):
            if backend == "vector":
                pass_result = _decode_pass_vector(pools)
            else:
                pass_result = _decode_pass_sequential(pools, backend)
            symbols, regions, elapsed, latencies, results = pass_result
            if best is None or elapsed < best[0]:
                best = (elapsed, symbols, regions, latencies, results)
        elapsed, symbols, regions, latencies, results = best
        digests[backend] = _digest_results(results)
        report[backend] = {
            "symbols": symbols,
            "regions": regions,
            "seconds": round(elapsed, 4),
            "symbols_per_second": round(symbols / elapsed),
            "regions_per_second": round(regions / elapsed),
            "p50_region_seconds": round(statistics.median(latencies), 9),
            "p99_region_seconds": round(_percentile(latencies, 0.99), 9),
            "latency_model": (
                "amortized-batch" if backend == "vector" else "per-call"
            ),
        }
    if len(set(digests.values())) != 1:
        raise AssertionError(
            f"decode backends diverged: {digests}"
        )
    report["digest"] = digests["table"]
    report["digests_identical"] = True
    report["speedup_table_over_reference"] = round(
        report["table"]["symbols_per_second"]
        / report["reference"]["symbols_per_second"],
        2,
    )
    report["speedup_vector_over_table"] = round(
        report["vector"]["symbols_per_second"]
        / report["table"]["symbols_per_second"],
        2,
    )
    return report


# -- fig7 sweep scaling ------------------------------------------------------


def sweep_mode_label(workers: int) -> str:
    """The honest label for a sweep that resolved to *workers*.

    A one-worker run exercises the cached harness but not the pool --
    calling it "parallel" would launder a serial measurement into a
    parallel claim, which is exactly the provenance bug this bench
    fixes.
    """
    return "parallel" if workers > 1 else "single-worker"


def _child_sweep(mode: str, scale: float) -> None:
    """Subprocess entry: time one full fig7_time_rows sweep."""
    from repro import settings

    if mode == "serial":
        from repro.analysis.experiments import fig7_time_rows
    else:
        from repro.analysis.parallel import fig7_time_rows

    workers = (
        settings.effective_bench_workers() if mode == "parallel" else 1
    )
    start = time.perf_counter()
    rows = fig7_time_rows(scale=scale)
    elapsed = time.perf_counter() - start
    print(
        json.dumps(
            {
                "elapsed": elapsed,
                "workers": workers,
                "mode": sweep_mode_label(workers) if mode == "parallel"
                else "serial",
                "rows": [
                    [row.name, row.theta_paper, row.relative_time]
                    for row in rows
                ],
            }
        )
    )


def _run_sweep(
    mode: str,
    scale: float,
    cache_dir: str | None,
    workers: int | None = None,
) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    if cache_dir is not None:
        env["REPRO_CACHE_DIR"] = cache_dir
    if workers is not None:
        env["REPRO_BENCH_WORKERS"] = str(workers)
    proc = subprocess.run(
        [
            sys.executable,
            str(pathlib.Path(__file__).resolve()),
            "--child",
            mode,
            "--scale",
            str(scale),
        ],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout.splitlines()[-1])


def bench_sweep(scale: float) -> dict:
    from repro import settings

    native = settings.effective_bench_workers()
    ladder = sorted({1, 2, native} & set(range(1, native + 1)) | {1})
    serial = _run_sweep("serial", scale, cache_dir=None)
    scaling = []
    warm = None
    for workers in ladder:
        with tempfile.TemporaryDirectory(
            prefix="repro-bench-cache-"
        ) as tmp:
            cold = _run_sweep(
                "parallel", scale, cache_dir=tmp, workers=workers
            )
            if cold["rows"] != serial["rows"]:
                raise AssertionError(
                    "parallel harness rows diverged from the serial driver"
                )
            entry = {
                "workers": cold["workers"],
                "mode": cold["mode"],
                "cold_seconds": round(cold["elapsed"], 2),
                "speedup_vs_serial": round(
                    serial["elapsed"] / cold["elapsed"], 2
                ),
            }
            if workers == max(ladder):
                rerun = _run_sweep(
                    "parallel", scale, cache_dir=tmp, workers=workers
                )
                if rerun["rows"] != serial["rows"]:
                    raise AssertionError(
                        "warm rerun rows diverged from the serial driver"
                    )
                warm = {
                    "workers": rerun["workers"],
                    "mode": rerun["mode"],
                    "warm_seconds": round(rerun["elapsed"], 4),
                    "speedup_vs_serial": round(
                        serial["elapsed"] / rerun["elapsed"], 1
                    ),
                }
            scaling.append(entry)
    return {
        "rows": len(serial["rows"]),
        "cpus": os.cpu_count(),
        "serial_seconds": round(serial["elapsed"], 2),
        "scaling": scaling,
        "warm": warm,
    }


# -- persistent-pool warm-up measurement -------------------------------------

POOL_WARM_WORKERS = 2


def bench_pool_warm(scale: float) -> dict:
    """Two identical cache-off supervised sweeps in this process.

    The first run spawns and warms the pool (imports, codec tables,
    stage-bundle memo in each worker); the second leases the same
    workers back.  The disk cache is off for both, so every saved
    second is pool persistence, not cache hits.
    """
    from repro import settings
    from repro.analysis.experiments import FIG7_THETAS, map_theta
    from repro.analysis.parallel import compute_cells
    from repro.core.pipeline import SquashConfig
    from repro.obs.metrics import get_registry
    from repro.workloads.mediabench import MEDIABENCH

    cells = [
        ("size", name, scale, SquashConfig(theta=map_theta(theta)))
        for name in MEDIABENCH
        for theta in FIG7_THETAS
    ]

    def _timed() -> float:
        start = time.perf_counter()
        compute_cells(
            cells, parallel=True, workers=POOL_WARM_WORKERS, cache=False
        )
        return time.perf_counter() - start

    with settings.use_settings(pool_persist=True):
        counters = get_registry().snapshot()["counters"]
        before = {
            key: counters.get(key, 0)
            for key in ("pool.acquire.fresh", "pool.acquire.reuse")
        }
        cold = _timed()
        warm = _timed()
        counters = get_registry().snapshot()["counters"]
    return {
        "workers": POOL_WARM_WORKERS,
        "cpus": os.cpu_count(),
        "cells": len(cells),
        "cold_seconds": round(cold, 2),
        "warm_pool_seconds": round(warm, 2),
        "speedup": round(cold / warm, 2),
        "pool_acquire_fresh": counters.get("pool.acquire.fresh", 0)
        - before["pool.acquire.fresh"],
        "pool_acquire_reuse": counters.get("pool.acquire.reuse", 0)
        - before["pool.acquire.reuse"],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_decode.json")
    )
    parser.add_argument("--child", choices=("serial", "parallel"))
    parser.add_argument(
        "--skip-sweep",
        action="store_true",
        help="only run the decoder microbenchmark",
    )
    parser.add_argument(
        "--assert-vector-faster",
        action="store_true",
        help="exit nonzero unless the vector backend beats table",
    )
    args = parser.parse_args()

    if args.child:
        _child_sweep(args.child, args.scale)
        return

    report = {
        "version": BENCH_VERSION,
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "scale": args.scale,
        "codec_variants": list(VARIANTS),
        "decoder": {
            variant: bench_decoder(args.scale, variant)
            for variant in VARIANTS
        },
    }
    for variant, decoder in report["decoder"].items():
        print(
            "decoder[{v}]: {reference[symbols_per_second]:,} ref -> "
            "{table[symbols_per_second]:,} table -> "
            "{vector[symbols_per_second]:,} vector sym/s "
            "(table {speedup_table_over_reference}x, "
            "vector {speedup_vector_over_table}x over table)".format(
                v=variant, **decoder
            )
        )
        if args.assert_vector_faster and (
            decoder["vector"]["symbols_per_second"]
            <= decoder["table"]["symbols_per_second"]
        ):
            print(
                f"FAIL: vector backend is not faster than table "
                f"under {variant}"
            )
            sys.exit(1)
    if not args.skip_sweep:
        report["fig7_time_sweep"] = bench_sweep(args.scale)
        sweep = report["fig7_time_sweep"]
        for entry in sweep["scaling"]:
            print(
                f"fig7 sweep [{entry['mode']} x{entry['workers']}]: "
                f"cold {entry['cold_seconds']}s "
                f"({entry['speedup_vs_serial']}x vs serial "
                f"{sweep['serial_seconds']}s)"
            )
        if sweep["warm"]:
            print(
                f"fig7 sweep warm: {sweep['warm']['warm_seconds']}s "
                f"({sweep['warm']['speedup_vs_serial']}x)"
            )
        report["pool_warm"] = bench_pool_warm(args.scale)
        pool = report["pool_warm"]
        print(
            f"pool warm: cold {pool['cold_seconds']}s -> warm "
            f"{pool['warm_pool_seconds']}s ({pool['speedup']}x, "
            f"reuse={pool['pool_acquire_reuse']})"
        )
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
