"""E8 / Section 3 in-text + A3 coder ablation.

Paper: the splitting-streams canonical-Huffman coder compresses
programs to "approximately 66% of [their] original size"; move-to-front
pre-coding helps some streams at the cost of a bigger, slower
decompressor.
"""

import dataclasses

from benchmarks.conftest import ALL_NAMES, SCALE, emit
from repro.analysis import ascii_table
from repro.analysis.experiments import (
    compression_ratio_stats,
    squash_benchmark,
)
from repro.analysis.stats import arithmetic_mean, percent
from repro.compress.codec import CodecConfig
from repro.core.pipeline import SquashConfig
from repro.isa.fields import FieldKind

MTF_KINDS = frozenset({FieldKind.RA, FieldKind.RB, FieldKind.RC})


def test_compression_ratio_and_coder_ablation(benchmark):
    def run():
        plain = compression_ratio_stats(ALL_NAMES, scale=SCALE)
        mtf_config = SquashConfig(
            theta=1.0, codec=CodecConfig(mtf_kinds=MTF_KINDS)
        )
        mtf = compression_ratio_stats(
            ALL_NAMES, scale=SCALE, config=mtf_config
        )
        dict_config = SquashConfig(
            theta=1.0, codec=CodecConfig(coder="dict")
        )
        dictionary = compression_ratio_stats(
            ALL_NAMES, scale=SCALE, config=dict_config
        )
        return plain, mtf, dictionary

    plain, mtf, dictionary = benchmark.pedantic(run, rounds=1, iterations=1)
    mtf_by_name = {row.name: row for row in mtf}
    dict_by_name = {row.name: row for row in dictionary}

    body = []
    for row in plain:
        other = mtf_by_name[row.name]
        third = dict_by_name[row.name]
        body.append(
            [
                row.name,
                percent(row.ratio),
                percent(row.stream_ratio),
                percent(other.ratio),
                percent(third.ratio),
            ]
        )
    mean_plain = arithmetic_mean([row.ratio for row in plain])
    mean_mtf = arithmetic_mean([row.ratio for row in mtf])
    mean_dict = arithmetic_mean([row.ratio for row in dictionary])
    body.append(
        ["MEAN", percent(mean_plain), "", percent(mean_mtf),
         percent(mean_dict)]
    )
    body.append(["PAPER", "~66%", "", "(slightly better)", "n/a"])
    table = ascii_table(
        ["program", "huffman total", "huffman stream",
         "mtf+huffman total", "dictionary total"],
        body,
        title=(
            f"Compression factor with everything compressed "
            f"(θ=1; Section 3 in-text + coder ablation; scale={SCALE})"
        ),
    )
    emit("compression_ratio", table)

    # Paper band: around 2/3 of the original size.
    assert 0.45 < mean_plain < 0.80
    for row in plain:
        assert row.stream_ratio < row.ratio  # tables cost extra
    # MTF on register streams changes little either way on our code,
    # but must not be catastrophically worse.
    assert mean_mtf < mean_plain + 0.05
    # The dictionary coder trades compression for decode speed: worse
    # ratio than Huffman, still far better than raw.
    assert mean_plain <= mean_dict < 1.0


def test_raw_vs_compressed_streams(benchmark):
    """The coder must beat storing raw 32-bit words by a wide margin."""

    def run():
        result = squash_benchmark(
            "gsm", SCALE, SquashConfig(theta=1.0)
        )
        blob = result.info.blob
        original_bits = result.info.compressed_original_instrs * 32
        return blob.stream_bits / original_bits

    ratio = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "compression_raw_baseline",
        f"gsm stream bits / raw bits = {ratio:.3f} (raw coder = 1.0)",
    )
    assert ratio < 0.8
