"""A2: region packing on/off (Section 4).

Packing merges small DFS regions, saving entry stubs, offset-table
entries, restore stubs and fall-through jumps; the cost is re-decoding
larger regions.  The paper argues the runtime cost is negligible for
cold code.
"""

import dataclasses

from benchmarks.conftest import SCALE, SWEEP_NAMES, emit
from repro.analysis import ascii_table, geometric_mean
from repro.analysis.experiments import squash_benchmark
from repro.analysis.stats import percent
from repro.core.pipeline import SquashConfig

THETA = 1.0


def test_packing_ablation(benchmark):
    def run():
        packed_cfg = SquashConfig(theta=THETA, pack=True)
        unpacked_cfg = SquashConfig(theta=THETA, pack=False)
        rows = []
        for name in SWEEP_NAMES:
            packed = squash_benchmark(name, SCALE, packed_cfg)
            unpacked = squash_benchmark(name, SCALE, unpacked_cfg)
            rows.append(
                (
                    name,
                    len(packed.info.regions),
                    len(unpacked.info.regions),
                    packed.info.entry_stub_count,
                    unpacked.info.entry_stub_count,
                    packed.reduction,
                    unpacked.reduction,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ascii_table(
        ["program", "regions (pack)", "regions (no pack)",
         "entry stubs (pack)", "entry stubs (no pack)",
         "reduction (pack)", "reduction (no pack)"],
        [
            [name, rp, ru, sp, su, percent(redp), percent(redu)]
            for name, rp, ru, sp, su, redp, redu in rows
        ],
        title=(
            f"Ablation: region packing at θ={THETA} "
            f"(benchmarks={SWEEP_NAMES}, scale={SCALE})"
        ),
    )
    emit("ablation_packing", table)

    for name, rp, ru, sp, su, redp, redu in rows:
        assert rp <= ru, f"{name}: packing must not add regions"
        assert sp <= su, f"{name}: packing must not add entry stubs"
        assert redp >= redu - 0.002, (
            f"{name}: packing must not hurt the footprint"
        )
    # On these workloads most region entry blocks are call targets, so
    # merging cannot shrink the stub set the way it does in the paper's
    # C programs; the measurable win is offset-table words (one per
    # merge) against Huffman-displacement noise.  Packing must at least
    # be footprint-neutral.
    mean_gain = geometric_mean(
        [(1 - row[6]) / (1 - row[5]) for row in rows]
    )
    assert mean_gain >= 0.998
