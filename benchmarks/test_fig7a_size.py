"""E5 / Figure 7(a): code size at the paper's operating thresholds.

Paper: θ ∈ {0, 1e-5, 5e-5} gives mean reductions of 13.7% / 16.8% /
18.8% relative to squeezed code.
"""

from benchmarks.conftest import ALL_NAMES, SCALE, emit, experiment_module
from repro.analysis import ascii_table, geometric_mean
from repro.analysis.experiments import FIG7_THETAS
from repro.analysis.stats import percent

PAPER_MEANS = {0.0: 0.137, 1e-5: 0.168, 5e-5: 0.188}


def test_fig7a_size(benchmark):
    fig7_size_rows = experiment_module().fig7_size_rows
    rows = benchmark.pedantic(
        lambda: fig7_size_rows(names=ALL_NAMES, scale=SCALE),
        rounds=1,
        iterations=1,
    )
    by_name: dict[str, dict[float, float]] = {}
    for row in rows:
        by_name.setdefault(row.name, {})[row.theta_paper] = row.reduction

    body = [
        [name] + [percent(by_name[name][t]) for t in FIG7_THETAS]
        for name in ALL_NAMES
    ]
    means = {
        t: 1 - geometric_mean([1 - by_name[n][t] for n in ALL_NAMES])
        for t in FIG7_THETAS
    }
    body.append(["MEAN"] + [percent(means[t]) for t in FIG7_THETAS])
    body.append(
        ["PAPER MEAN"] + [percent(PAPER_MEANS[t]) for t in FIG7_THETAS]
    )
    table = ascii_table(
        ["program"] + [f"θp={t}" for t in FIG7_THETAS],
        body,
        title=(
            f"Figure 7(a): size reduction at the operating thresholds "
            f"(scale={SCALE})"
        ),
    )
    emit("fig7a_size", table)

    assert means[0.0] > 0.08
    assert means[5e-5] >= means[1e-5] >= means[0.0]
