"""E7 / Section 2.2 in-text: restore-stub costs.

Paper: creating all restore stubs at compile time costs 13% of the
never-compressed code on average (up to 20%) when compressing only
never-executed code, rising to 27% at θ=0.01; the runtime
reference-counted scheme needs at most 9 concurrent stubs across the
whole suite even at θ=0.01.
"""

from benchmarks.conftest import ALL_NAMES, SCALE, emit
from repro.analysis import ascii_table
from repro.analysis.experiments import restore_stub_stats
from repro.analysis.stats import arithmetic_mean, percent


def test_restore_stub_costs(benchmark):
    def run():
        # The paper's θ=0.01 marks ~94% of code cold; under our ×100 θ
        # mapping that corresponds to θ_paper=1e-4 (our θ=0.01, ~92%
        # cold -- see Figure 4), not to the saturated θ=1.
        return (
            restore_stub_stats(ALL_NAMES, scale=SCALE, theta_paper=0.0),
            restore_stub_stats(ALL_NAMES, scale=SCALE, theta_paper=1e-4),
        )

    at_zero, at_hot = benchmark.pedantic(run, rounds=1, iterations=1)
    hot_by_name = {row.name: row for row in at_hot}

    body = []
    for row in at_zero:
        hot = hot_by_name[row.name]
        body.append(
            [
                row.name,
                percent(row.compile_time_fraction),
                percent(hot.compile_time_fraction),
                row.max_live_stubs,
                hot.max_live_stubs,
                hot.stubs_created,
            ]
        )
    mean0 = arithmetic_mean(
        [row.compile_time_fraction for row in at_zero]
    )
    mean_hot = arithmetic_mean(
        [row.compile_time_fraction for row in at_hot]
    )
    body.append(
        ["MEAN", percent(mean0), percent(mean_hot), "", "", ""]
    )
    body.append(["PAPER MEAN", "13.0%", "27.0%", "", "<=9", ""])
    table = ascii_table(
        ["program", "CT stubs/never-compressed (θ=0)",
         "same (θp=1e-4)", "max live (θ=0)", "max live (θp=1e-4)",
         "created (θp=1e-4)"],
        body,
        title=f"Restore-stub cost (Section 2.2 in-text; scale={SCALE})",
    )
    emit("restore_stubs", table)

    # Shape: the compile-time scheme is a significant fraction of the
    # never-compressed code and grows with θ; the runtime scheme stays
    # tiny (paper: max 9 concurrent stubs).
    assert mean_hot > mean0
    assert 0.02 < mean0 < 0.5
    for row in at_hot:
        assert row.max_live_stubs <= 9
        assert row.stubs_created == row.stubs_freed
