"""E2 / Figure 3: effect of the buffer size bound K on code size.

Paper: relative code size vs. K for three cold-code thresholds; the
optimum sits at K = 256/512 bytes -- small bounds fragment the cold
code into many regions (entry stubs + offset-table entries), large
bounds pay for a big runtime buffer.
"""

from benchmarks.conftest import SCALE, SWEEP_NAMES, emit, experiment_module
from repro.analysis import ascii_table
from repro.analysis.experiments import FIG3_BOUNDS, FIG3_THETAS
from repro.analysis.stats import percent


def test_fig3_buffer_bound(benchmark):
    fig3_rows = experiment_module().fig3_rows
    rows = benchmark.pedantic(
        lambda: fig3_rows(
            names=SWEEP_NAMES,
            scale=SCALE,
            bounds=FIG3_BOUNDS,
            thetas=FIG3_THETAS,
        ),
        rounds=1,
        iterations=1,
    )
    by_theta: dict[float, dict[int, float]] = {}
    for row in rows:
        by_theta.setdefault(row.theta_paper, {})[row.bound_bytes] = (
            row.relative_size
        )

    table = ascii_table(
        ["K (bytes)"] + [f"theta={t}" for t in FIG3_THETAS],
        [
            [bound]
            + [f"{by_theta[t][bound]:.4f}" for t in FIG3_THETAS]
            for bound in FIG3_BOUNDS
        ],
        title=(
            f"Figure 3: geo-mean relative code size vs. buffer bound "
            f"(benchmarks={SWEEP_NAMES}, scale={SCALE})"
        ),
    )
    emit("fig3_buffer_bound", table)

    # Shape: the best bound is an interior point (paper: 256/512).
    for theta in FIG3_THETAS:
        series = by_theta[theta]
        best = min(series, key=series.get)
        assert best in (128, 256, 512, 1024), (
            f"optimum K={best} at theta={theta} is at the sweep edge"
        )
        # the extremes are worse than the optimum
        assert series[FIG3_BOUNDS[0]] >= series[best]
        assert series[FIG3_BOUNDS[-1]] >= series[best]
